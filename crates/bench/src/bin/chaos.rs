//! CHAOS: deterministic fault-injection soak for the serving layer.
//!
//! Drives hundreds of concurrent clients against a
//! [`dnnperf_serve::PredictionServer`] while injecting the failure modes
//! the serving layer promises to survive, in two scenarios:
//!
//! 1. **transport** — every client speaks the framed protocol through a
//!    seeded [`dnnperf_serve::FaultyTransport`] that tears frames into
//!    single-byte writes, stalls, corrupts one payload byte, or
//!    disconnects mid-frame. Clients reconnect and resend on connection
//!    loss; a corrupted frame is answered with a structured error (a
//!    terminal answer, not a hang).
//! 2. **panics** — a seeded [`dnnperf_serve::PanicPlan`] crashes workers
//!    mid-service; the supervisor must answer every victim with a typed
//!    `internal` response and respawn the worker. A fifth of the
//!    requests carry a zero deadline and must be shed at admission.
//!
//! The whole soak is **deterministic**: fault and panic schedules are
//! pure functions of `(seed, stream id, frame)` / `(seed, admission
//! seq)`, client request streams are seeded LCGs, and stream ids derive
//! from `(client id, connection seq)`. Each scenario therefore runs
//! TWICE and the bench aborts unless both runs produce byte-identical
//! counter digests — `--check` or not. It also aborts if any request
//! fails to receive exactly one terminal response (the zero-hung-requests
//! guarantee), or if the server-side counters break conservation.
//!
//! Flags:
//!
//! * `--smoke` — fewer clients/requests for CI;
//! * `--out PATH` — write the counters as one JSON document (BENCH_8.json);
//! * `--check PATH` — re-run, then gate against a committed baseline:
//!   every counter must match exactly; the prediction checksum must match
//!   to 1e-6 relative.

use dnnperf_core::Workflow;
use dnnperf_data::collect::collect;
use dnnperf_dnn::zoo;
use dnnperf_gpu::GpuSpec;
use dnnperf_serve::{
    read_frame, write_frame, CacheConfig, Client, FaultyTransport, InjectedWorkerPanic, PanicPlan,
    PredictionServer, Request, Response, ServerConfig, TcpConfig, TcpServer, TransportFaultPlan,
    TransportFaultStats,
};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TENANT: &str = "chaos";
const BATCHES: [usize; 4] = [1, 2, 4, 8];
/// Seed of the transport fault universe.
const FAULT_SEED: u64 = 0xC4A0_55EE;
/// Per-frame transport fault probability.
const FAULT_RATE: f64 = 0.2;
/// Seed of the worker panic universe.
const PANIC_SEED: u64 = 0xD15E_A5E5;
/// Per-request worker panic probability.
const PANIC_RATE: f64 = 0.12;
/// Attempts (including reconnects) before a transport client gives up.
const MAX_ATTEMPTS: usize = 32;
/// Relative tolerance for the float gate.
const FLOAT_RTOL: f64 = 1e-6;

struct Flags {
    smoke: bool,
    out: Option<String>,
    check: Option<String>,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        smoke: false,
        out: None,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => flags.smoke = true,
            "--out" => flags.out = args.next(),
            "--check" => flags.check = args.next(),
            other => {
                if let Some(v) = other.strip_prefix("--out=") {
                    flags.out = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--check=") {
                    flags.check = Some(v.to_string());
                } else {
                    eprintln!("chaos: unknown flag {other}");
                    std::process::exit(2);
                }
            }
        }
    }
    flags
}

/// Extracts the number following `"key":` from a (flat) JSON document.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = &doc[at..];
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn fail(msg: &str) -> ! {
    eprintln!("FATAL: {msg}");
    std::process::exit(1)
}

fn lcg_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn chaos_nets() -> Vec<dnnperf_dnn::Network> {
    vec![
        zoo::mobilenet::mobilenet_v2(0.25, 1.0),
        zoo::mobilenet::mobilenet_v2(0.5, 1.5),
        zoo::squeezenet::squeezenet(64, 32, 0.125),
        zoo::squeezenet::squeezenet(128, 128, 0.25),
    ]
}

fn train_suite() -> Arc<Workflow> {
    let gpu = GpuSpec::by_name("A100").expect("A100 spec");
    let ds = collect(&chaos_nets(), std::slice::from_ref(&gpu), &[1, 8]);
    Arc::new(Workflow::train(&ds, "A100").expect("train"))
}

/// Suppresses the default panic banner for *injected* worker panics so a
/// soak with hundreds of scheduled crashes doesn't bury real failures.
fn install_quiet_panic_hook() {
    std::panic::set_hook(Box::new(|info| {
        if info
            .payload()
            .downcast_ref::<InjectedWorkerPanic>()
            .is_some()
        {
            return;
        }
        eprintln!("panic: {info}");
    }));
}

/// Aborts the soak if it wall-clocks past `budget` — the blunt-force
/// detector for a hung request that the per-scenario accounting missed.
fn spawn_watchdog(done: Arc<AtomicBool>, budget: Duration) {
    std::thread::spawn(move || {
        let started = Instant::now();
        while started.elapsed() < budget {
            std::thread::sleep(Duration::from_millis(500));
            if done.load(Ordering::Acquire) {
                return;
            }
        }
        eprintln!(
            "FATAL: chaos watchdog fired after {:.0}s — a request hung",
            budget.as_secs_f64()
        );
        std::process::exit(3);
    });
}

// -- scenario 1: transport faults --------------------------------------------

#[derive(Default)]
struct TransportTally {
    ok: u64,
    rejected: u64,
    gave_up: u64,
    connections: u64,
    faults: TransportFaultStats,
    checksum: f64,
}

/// One client: `requests` sequential predicts through a faulty
/// transport, reconnecting (with a deterministic new stream id) whenever
/// the connection dies. Every request ends in exactly one of: an `ok`
/// response, a structured rejection, or a counted give-up.
fn transport_client(
    addr: SocketAddr,
    plan: &TransportFaultPlan,
    names: &[String],
    client_id: u64,
    requests: usize,
) -> TransportTally {
    let mut tally = TransportTally::default();
    let mut conn_seq = 0u64;
    let mut transport: Option<FaultyTransport<TcpStream>> = None;
    let mut rng = 0x5eed_c4a0_50d0_0d1eu64 ^ client_id.rotate_left(17);
    for _ in 0..requests {
        let net = &names[(lcg_next(&mut rng) as usize) % names.len()];
        let batch = BATCHES[(lcg_next(&mut rng) as usize) % BATCHES.len()];
        let payload = Request::Predict {
            tenant: TENANT.to_string(),
            network: net.clone(),
            batch,
            deadline_ms: None,
        }
        .format();
        let mut answered = false;
        for _ in 0..MAX_ATTEMPTS {
            if transport.is_none() {
                let Ok(stream) = TcpStream::connect(addr) else {
                    continue;
                };
                let _ = stream.set_nodelay(true);
                let sid = client_id * 1000 + conn_seq;
                conn_seq += 1;
                tally.connections += 1;
                transport = Some(FaultyTransport::new(stream, plan.clone(), sid));
            }
            let Some(t) = transport.as_mut() else {
                continue;
            };
            let round = write_frame(t, &payload).and_then(|()| read_frame(t));
            match round {
                Ok(Some(line)) => {
                    match Response::parse(&line) {
                        Ok(Response::Ok { seconds, .. }) => {
                            tally.ok += 1;
                            tally.checksum += seconds;
                        }
                        // A corrupted frame comes back as a structured
                        // rejection: terminal, loud, not a hang.
                        _ => tally.rejected += 1,
                    }
                    answered = true;
                    break;
                }
                // Connection loss (injected disconnect, or the server
                // hanging up after a garbled frame): retire the stream —
                // its fault counters fold into the tally — and resend on
                // a fresh connection. Predictions are idempotent reads.
                Ok(None) | Err(_) => {
                    if let Some(dead) = transport.take() {
                        tally.faults.merge(&dead.stats());
                    }
                }
            }
        }
        if !answered {
            tally.gave_up += 1;
        }
    }
    if let Some(t) = transport.take() {
        tally.faults.merge(&t.stats());
    }
    tally
}

struct TransportOutcome {
    clients: usize,
    requests_per_client: usize,
    ok: u64,
    rejected: u64,
    gave_up: u64,
    connections: u64,
    faults: TransportFaultStats,
    checksum: f64,
    admitted: u64,
    completed: u64,
}

impl TransportOutcome {
    fn digest(&self) -> String {
        format!(
            "transport ok={} rejected={} gave_up={} connections={} torn={} corrupted={} \
             stalled={} disconnected={} admitted={} completed={} checksum={:016x}",
            self.ok,
            self.rejected,
            self.gave_up,
            self.connections,
            self.faults.torn,
            self.faults.corrupted,
            self.faults.stalled,
            self.faults.disconnected,
            self.admitted,
            self.completed,
            self.checksum.to_bits()
        )
    }
}

fn run_transport(suite: &Arc<Workflow>, smoke: bool) -> TransportOutcome {
    let (clients, requests_per_client) = if smoke { (64usize, 10usize) } else { (200, 25) };
    let nets = chaos_nets();
    let names: Vec<String> = nets.iter().map(|n| n.name().to_string()).collect();

    let server = Arc::new(PredictionServer::start(&ServerConfig {
        workers: 4,
        // Deep enough that in-flight requests (<= clients) never shed:
        // admission counts stay schedule-determined, not timing-determined.
        queue_depth: 4096,
        max_batch: 8,
        cache: CacheConfig {
            shards: 8,
            budget_bytes: 64 << 20,
        },
        panic_plan: None,
    }));
    server.register_tenant(TENANT, Arc::clone(suite));
    server.add_networks(nets);
    let tcp = TcpServer::serve_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        TcpConfig {
            idle_timeout: Duration::from_secs(10),
            frame_timeout: Duration::from_secs(1),
            poll: Duration::from_millis(20),
        },
    )
    .expect("bind ephemeral port");
    let addr = tcp.addr();
    let plan = TransportFaultPlan::chaos(FAULT_SEED, FAULT_RATE);

    let tallies: Vec<TransportTally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|id| {
                let names = &names;
                let plan = &plan;
                s.spawn(move || transport_client(addr, plan, names, id as u64, requests_per_client))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("transport client thread"))
            .collect()
    });

    tcp.shutdown();
    let stats = server.stats();
    server.shutdown();

    let mut out = TransportOutcome {
        clients,
        requests_per_client,
        ok: 0,
        rejected: 0,
        gave_up: 0,
        connections: 0,
        faults: TransportFaultStats::default(),
        // Sum per-client checksums in client-id order: f64 addition is
        // order-sensitive, and this order is deterministic.
        checksum: 0.0,
        admitted: stats.admitted,
        completed: stats.completed,
    };
    for t in &tallies {
        out.ok += t.ok;
        out.rejected += t.rejected;
        out.gave_up += t.gave_up;
        out.connections += t.connections;
        out.faults.merge(&t.faults);
        out.checksum += t.checksum;
    }

    let total = (clients * requests_per_client) as u64;
    if out.ok + out.rejected + out.gave_up != total {
        fail(&format!(
            "transport scenario lost requests: {} ok + {} rejected + {} gave up != {total}",
            out.ok, out.rejected, out.gave_up
        ));
    }
    if out.admitted != out.completed {
        fail(&format!(
            "transport scenario left work in flight: admitted {} != completed {}",
            out.admitted, out.completed
        ));
    }
    // Note: `admitted` can exceed client-observed `ok` — a corrupted
    // frame may still parse as a *valid* request with a mutated batch
    // (e.g. a digit flipped to 0) that is admitted, completes with a
    // structured prediction error, and lands in `rejected`.
    if out.ok > out.admitted {
        fail(&format!(
            "transport scenario answered ok {} times but admitted only {}",
            out.ok, out.admitted
        ));
    }
    if stats.panicked != 0 || stats.shed != 0 || stats.shed_deadline != 0 || stats.expired != 0 {
        fail("transport scenario tripped counters it must not touch");
    }
    out
}

// -- scenario 2: worker panics + zero deadlines -------------------------------

#[derive(Default)]
struct PanicTally {
    ok: u64,
    internal: u64,
    deadline: u64,
    other: u64,
}

fn panic_client(addr: SocketAddr, names: &[String], client_id: u64, requests: usize) -> PanicTally {
    let mut tally = PanicTally::default();
    let mut client = Client::connect(addr).expect("connect");
    let mut rng = 0x0bad_5eed_0000_c0deu64 ^ client_id.rotate_left(29);
    for r in 0..requests {
        let net = &names[(lcg_next(&mut rng) as usize) % names.len()];
        let batch = BATCHES[(lcg_next(&mut rng) as usize) % BATCHES.len()];
        // Every fifth request demands the impossible: a zero deadline,
        // shed at admission before it can consume a sequence number.
        let deadline_ms = if r % 5 == 4 { Some(0) } else { None };
        let resp = client.call(&Request::Predict {
            tenant: TENANT.to_string(),
            network: net.clone(),
            batch,
            deadline_ms,
        });
        match resp {
            Ok(Response::Ok { .. }) => tally.ok += 1,
            Ok(Response::Internal(_)) => tally.internal += 1,
            Ok(Response::DeadlineExceeded) => tally.deadline += 1,
            _ => tally.other += 1,
        }
    }
    tally
}

struct PanicOutcome {
    clients: usize,
    requests_per_client: usize,
    ok: u64,
    internal: u64,
    deadline: u64,
    admitted: u64,
    completed: u64,
    panicked: u64,
    respawns: u64,
}

impl PanicOutcome {
    fn digest(&self) -> String {
        format!(
            "panics ok={} internal={} deadline={} admitted={} completed={} panicked={} respawns={}",
            self.ok,
            self.internal,
            self.deadline,
            self.admitted,
            self.completed,
            self.panicked,
            self.respawns
        )
    }
}

fn run_panics(suite: &Arc<Workflow>, smoke: bool) -> PanicOutcome {
    let (clients, requests_per_client) = if smoke { (96usize, 10usize) } else { (256, 25) };
    let nets = chaos_nets();
    let names: Vec<String> = nets.iter().map(|n| n.name().to_string()).collect();
    let plan = PanicPlan::new(PANIC_SEED, PANIC_RATE);

    let server = Arc::new(PredictionServer::start(&ServerConfig {
        workers: 4,
        queue_depth: 4096,
        max_batch: 8,
        cache: CacheConfig {
            shards: 8,
            budget_bytes: 64 << 20,
        },
        panic_plan: Some(plan.clone()),
    }));
    server.register_tenant(TENANT, Arc::clone(suite));
    server.add_networks(nets);
    let tcp = TcpServer::serve(Arc::clone(&server), "127.0.0.1:0").expect("bind ephemeral port");
    let addr = tcp.addr();

    let tallies: Vec<PanicTally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|id| {
                let names = &names;
                s.spawn(move || panic_client(addr, names, id as u64, requests_per_client))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("panic client thread"))
            .collect()
    });

    tcp.shutdown();
    let stats = server.stats();
    server.shutdown();

    let mut out = PanicOutcome {
        clients,
        requests_per_client,
        ok: 0,
        internal: 0,
        deadline: 0,
        admitted: stats.admitted,
        completed: stats.completed,
        panicked: stats.panicked,
        respawns: stats.respawns,
    };
    let mut other = 0u64;
    for t in &tallies {
        out.ok += t.ok;
        out.internal += t.internal;
        out.deadline += t.deadline;
        other += t.other;
    }

    let total = (clients * requests_per_client) as u64;
    if out.ok + out.internal + out.deadline + other != total {
        fail("panic scenario lost requests: tallies do not sum to the submissions");
    }
    if other != 0 {
        fail(&format!("panic scenario saw {other} unexpected responses"));
    }
    if stats.shed_deadline != out.deadline {
        fail(&format!(
            "deadline accounting drift: server shed {} vs {} deadline-exceeded answers",
            stats.shed_deadline, out.deadline
        ));
    }
    if out.admitted != total - out.deadline {
        fail(&format!(
            "admission drift: admitted {} != {} submitted - {} shed",
            out.admitted, total, out.deadline
        ));
    }
    // The panic schedule is pure over admission seqs: the server's panic
    // counter must equal both the clients' internal answers and the
    // plan's own expectation — and every panic must have respawned.
    if out.panicked != out.internal {
        fail(&format!(
            "supervision drift: {} worker panics vs {} internal answers",
            out.panicked, out.internal
        ));
    }
    if out.panicked != plan.fires_among(out.admitted) {
        fail(&format!(
            "panic schedule drift: {} fired vs {} expected over {} admissions",
            out.panicked,
            plan.fires_among(out.admitted),
            out.admitted
        ));
    }
    if out.respawns != out.panicked {
        fail(&format!(
            "a panic shrank the pool: {} respawns vs {} panics",
            out.respawns, out.panicked
        ));
    }
    if out.completed != out.admitted - out.panicked {
        fail(&format!(
            "completion drift: {} completed vs {} admitted - {} panicked",
            out.completed, out.admitted, out.panicked
        ));
    }
    if stats.expired != 0 || stats.shed != 0 {
        fail("panic scenario tripped counters it must not touch");
    }
    out
}

// -- report + gate ------------------------------------------------------------

struct Report {
    profile: &'static str,
    transport: TransportOutcome,
    panics: PanicOutcome,
    elapsed_ms: f64,
}

impl Report {
    fn to_json(&self) -> String {
        let t = &self.transport;
        let p = &self.panics;
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"dnnperf-bench-8\",\n");
        out.push_str(&format!("  \"profile\": \"{}\",\n", self.profile));
        out.push_str(&format!("  \"transport_clients\": {},\n", t.clients));
        out.push_str(&format!(
            "  \"transport_requests_per_client\": {},\n",
            t.requests_per_client
        ));
        out.push_str(&format!("  \"transport_ok\": {},\n", t.ok));
        out.push_str(&format!("  \"transport_rejected\": {},\n", t.rejected));
        out.push_str(&format!("  \"transport_gave_up\": {},\n", t.gave_up));
        out.push_str(&format!(
            "  \"transport_connections\": {},\n",
            t.connections
        ));
        out.push_str(&format!("  \"transport_torn\": {},\n", t.faults.torn));
        out.push_str(&format!(
            "  \"transport_corrupted\": {},\n",
            t.faults.corrupted
        ));
        out.push_str(&format!("  \"transport_stalled\": {},\n", t.faults.stalled));
        out.push_str(&format!(
            "  \"transport_disconnected\": {},\n",
            t.faults.disconnected
        ));
        out.push_str(&format!("  \"transport_admitted\": {},\n", t.admitted));
        out.push_str(&format!("  \"transport_completed\": {},\n", t.completed));
        out.push_str(&format!(
            "  \"transport_checksum_s\": {:.12e},\n",
            t.checksum
        ));
        out.push_str(&format!("  \"panic_clients\": {},\n", p.clients));
        out.push_str(&format!(
            "  \"panic_requests_per_client\": {},\n",
            p.requests_per_client
        ));
        out.push_str(&format!("  \"panic_ok\": {},\n", p.ok));
        out.push_str(&format!("  \"panic_internal\": {},\n", p.internal));
        out.push_str(&format!("  \"panic_deadline_shed\": {},\n", p.deadline));
        out.push_str(&format!("  \"panic_admitted\": {},\n", p.admitted));
        out.push_str(&format!("  \"panic_completed\": {},\n", p.completed));
        out.push_str(&format!("  \"panic_panicked\": {},\n", p.panicked));
        out.push_str(&format!("  \"panic_respawns\": {},\n", p.respawns));
        out.push_str(&format!("  \"elapsed_ms\": {:.1}\n", self.elapsed_ms));
        out.push_str("}\n");
        out
    }

    /// Every gated key: `(name, value, exact)`. Exact keys are counters
    /// and must match the baseline bit-for-bit; the rest gate at
    /// [`FLOAT_RTOL`]. `elapsed_ms` is machine-speed and never gated.
    fn gated(&self) -> Vec<(&'static str, f64, bool)> {
        let t = &self.transport;
        let p = &self.panics;
        vec![
            ("transport_clients", t.clients as f64, true),
            (
                "transport_requests_per_client",
                t.requests_per_client as f64,
                true,
            ),
            ("transport_ok", t.ok as f64, true),
            ("transport_rejected", t.rejected as f64, true),
            ("transport_gave_up", t.gave_up as f64, true),
            ("transport_connections", t.connections as f64, true),
            ("transport_torn", t.faults.torn as f64, true),
            ("transport_corrupted", t.faults.corrupted as f64, true),
            ("transport_stalled", t.faults.stalled as f64, true),
            ("transport_disconnected", t.faults.disconnected as f64, true),
            ("transport_admitted", t.admitted as f64, true),
            ("transport_completed", t.completed as f64, true),
            ("transport_checksum_s", t.checksum, false),
            ("panic_clients", p.clients as f64, true),
            (
                "panic_requests_per_client",
                p.requests_per_client as f64,
                true,
            ),
            ("panic_ok", p.ok as f64, true),
            ("panic_internal", p.internal as f64, true),
            ("panic_deadline_shed", p.deadline as f64, true),
            ("panic_admitted", p.admitted as f64, true),
            ("panic_completed", p.completed as f64, true),
            ("panic_panicked", p.panicked as f64, true),
            ("panic_respawns", p.respawns as f64, true),
        ]
    }
}

fn check_baseline(report: &Report, path: &str) {
    let baseline = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("chaos --check: cannot read {path}: {e}"));
    let mut failed = false;
    for (key, actual, exact) in report.gated() {
        let Some(expected) = json_number(&baseline, key) else {
            eprintln!("GATE FAIL: no {key} in {path}");
            failed = true;
            continue;
        };
        let ok = if exact {
            actual == expected
        } else {
            (actual - expected).abs() <= FLOAT_RTOL * expected.abs().max(1e-300)
        };
        if !ok {
            eprintln!("GATE FAIL: {key} = {actual} vs baseline {expected}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("gate OK: every counter matched {path} (floats to {FLOAT_RTOL:.0e} rel)");
}

fn main() {
    let flags = parse_flags();
    dnnperf_bench::banner(
        "CHAOS",
        "deterministic fault-injection soak for the serving layer",
    );
    install_quiet_panic_hook();
    let done = Arc::new(AtomicBool::new(false));
    spawn_watchdog(
        Arc::clone(&done),
        Duration::from_secs(if flags.smoke { 240 } else { 900 }),
    );

    let suite = train_suite();
    let started = Instant::now();

    // Each scenario runs twice; the digests must replay byte-identically.
    let transport = run_transport(&suite, flags.smoke);
    let replay = run_transport(&suite, flags.smoke);
    if transport.digest() != replay.digest() {
        eprintln!("run 1: {}", transport.digest());
        eprintln!("run 2: {}", replay.digest());
        fail("transport scenario did not replay byte-identically");
    }
    println!("  {}", transport.digest());

    let panics = run_panics(&suite, flags.smoke);
    let replay = run_panics(&suite, flags.smoke);
    if panics.digest() != replay.digest() {
        eprintln!("run 1: {}", panics.digest());
        eprintln!("run 2: {}", replay.digest());
        fail("panic scenario did not replay byte-identically");
    }
    println!("  {}", panics.digest());

    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    done.store(true, Ordering::Release);

    let report = Report {
        profile: if flags.smoke { "smoke" } else { "full" },
        transport,
        panics,
        elapsed_ms,
    };
    println!();
    println!(
        "{} transport clients through {} injected faults, {} panic clients through {} worker \
         crashes: every request terminal, both scenarios replayed byte-identically ({:.0} ms)",
        report.transport.clients,
        report.transport.faults.total(),
        report.panics.clients,
        report.panics.panicked,
        report.elapsed_ms
    );

    if let Some(path) = &flags.out {
        std::fs::write(path, report.to_json()).expect("write report");
        println!("wrote {path}");
    }
    if let Some(path) = &flags.check {
        check_baseline(&report, path);
    }
}
