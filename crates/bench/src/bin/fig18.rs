//! Figure 18 (Case Study 3): actual vs predicted execution time for a set
//! of networks on A40 and TITAN RTX. The performance model must pick the
//! faster GPU for every network (the paper's yellow crosses).

use dnnperf_bench::{banner, cells, collect_verbose, gpu, measure, TextTable};
use dnnperf_core::{KwModel, Predictor};
use dnnperf_dnn::zoo;
use dnnperf_sched::best_gpu;

fn main() {
    banner(
        "Figure 18",
        "Measured vs predicted time on A40 and TITAN RTX, per network",
    );
    let gpus = [gpu("A40"), gpu("TITAN RTX")];
    let train_nets = dnnperf_bench::cnn_zoo();
    let batch = 128usize;
    let ds = collect_verbose(&train_nets, &gpus, &[batch]);
    let models: Vec<KwModel> = gpus
        .iter()
        .map(|g| KwModel::train(&ds, &g.name).expect("train KW"))
        .collect();

    let nets = [
        zoo::resnet::resnet50(),
        zoo::resnet::resnet77(),
        zoo::densenet::densenet161(),
        zoo::densenet::densenet169(),
        zoo::densenet::densenet121(),
        zoo::shufflenet::shufflenet_v1(3, 1.0, &[4, 8, 4]),
    ];

    let mut t = TextTable::new(&[
        "network",
        "A40 meas",
        "A40 pred",
        "TITAN meas",
        "TITAN pred",
        "choice",
        "correct",
    ]);
    let mut correct = 0usize;
    let mut near_tie_misses = 0usize;
    for net in &nets {
        let meas: Vec<f64> = gpus.iter().map(|g| measure(g, net, batch)).collect();
        let pred: Vec<f64> = models
            .iter()
            .map(|m| m.predict_network(net, batch).expect("predict"))
            .collect();
        let choice = best_gpu(&pred);
        let truth = best_gpu(&meas);
        if choice == truth {
            correct += 1;
        } else if (meas[choice] - meas[truth]).abs() / meas[truth] < 0.10 {
            near_tie_misses += 1;
        }
        t.row(&cells![
            net.name(),
            dnnperf_bench::ms(meas[0]),
            dnnperf_bench::ms(pred[0]),
            dnnperf_bench::ms(meas[1]),
            dnnperf_bench::ms(pred[1]),
            gpus[choice].name,
            if choice == truth { "yes" } else { "NO" }
        ]);
    }
    t.print();
    println!(
        "\ncorrect GPU choices: {correct}/{} ({near_tie_misses} miss(es) on near-ties where the \
         GPUs differ by < 10%)",
        nets.len()
    );
    println!("paper reference: the model selects the faster GPU for all networks;");
    println!("misrouting a near-tie costs almost nothing (see the makespan gap in Figure 19)");
}
