//! Dataset statistics: reproduces the paper's Section 3 bookkeeping claims
//! ("In total, we have 646 networks and about 182 kernels (~240,000 kernel
//! executions) each GPU recorded in our dataset").

use dnnperf_bench::{banner, cells, collect_verbose, TextTable};
use dnnperf_data::collect::{evaluation_gpus, TRAIN_BATCH};
use std::collections::BTreeMap;

fn main() {
    banner(
        "Dataset statistics",
        "networks / kernels / executions per GPU (Section 3)",
    );
    let zoo = dnnperf_bench::cnn_zoo();
    println!("CNN zoo size: {} networks (paper: 646)", zoo.len());

    let mut per_family: BTreeMap<String, usize> = BTreeMap::new();
    for net in &zoo {
        *per_family.entry(net.family().to_string()).or_default() += 1;
    }
    let mut t = TextTable::new(&["family", "networks"]);
    for (family, count) in &per_family {
        t.row(&cells![family, count]);
    }
    t.print();

    let ds = collect_verbose(&zoo, &evaluation_gpus(), &[TRAIN_BATCH]);
    println!();
    let mut t = TextTable::new(&[
        "GPU",
        "networks measured",
        "distinct kernels",
        "kernel executions",
    ]);
    for gname in ds.gpu_names() {
        let sub = ds.for_gpu(&gname);
        t.row(&cells![
            gname,
            sub.networks.len(),
            sub.distinct_kernels(),
            sub.kernels.len()
        ]);
    }
    t.print();
    println!("\npaper reference: ~182 distinct kernels and ~240,000 kernel executions per GPU;");
    println!("on A100 the paper's 242,394 executions over 83 models average ~2,920 points each");
    let a100 = ds.for_gpu("A100");
    let per_model = a100.kernels.len() as f64 / 80.0;
    println!(
        "here: {} executions over ~80 models average ~{:.0} points each",
        a100.kernels.len(),
        per_model
    );
}
