//! Figure 4: execution time for ResNet and VGG networks at batch size 512.
//! Networks with different structures fall on different lines; VGG's line
//! is flatter (more time-efficient per FLOP).

use dnnperf_bench::{banner, cells, gpu, measure, TextTable};
use dnnperf_dnn::zoo::{resnet::resnet_from_blocks, vgg::vgg_from_stages};
use dnnperf_dnn::Network;
use dnnperf_linreg::fit;

fn family_line(nets: &[Network], batch: usize) -> (f64, Vec<(String, f64, f64)>) {
    let a100 = gpu("A100");
    let mut points = Vec::new();
    for n in nets {
        let gflops = n.total_flops() as f64 * batch as f64 / 1e9;
        let t = measure(&a100, n, batch);
        points.push((n.name().to_string(), gflops / batch as f64, t));
    }
    let xs: Vec<f64> = points.iter().map(|p| p.1).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.2).collect();
    let slope = fit(&xs, &ys).map(|f| f.line.slope).unwrap_or(f64::NAN);
    (slope, points)
}

fn main() {
    banner("Figure 4", "ResNet vs VGG execution time at BS=512 (A100)");
    let batch = dnnperf_bench::train_batch();
    // Standard plus non-standard variants, as in the paper.
    let resnets: Vec<Network> = [
        ([2, 2, 2, 2], false),
        ([3, 4, 6, 3], false),
        ([3, 5, 8, 5], false),
        ([3, 4, 6, 3], true),
        ([3, 4, 10, 3], true),
        ([3, 4, 15, 3], true),
        ([3, 4, 23, 3], true),
        ([2, 3, 4, 3], true),
    ]
    .iter()
    .map(|(b, bott)| resnet_from_blocks(b, *bott, 1.0))
    .collect();
    let vggs: Vec<Network> = [
        [1, 1, 2, 2, 2],
        [2, 2, 2, 2, 2],
        [2, 2, 3, 3, 3],
        [2, 2, 4, 4, 4],
        [1, 2, 3, 3, 2],
        [2, 3, 4, 4, 3],
    ]
    .iter()
    .map(|c| vgg_from_stages(c, false))
    .collect();

    let (r_slope, r_points) = family_line(&resnets, batch);
    let (v_slope, v_points) = family_line(&vggs, batch);

    let mut t = TextTable::new(&["network", "GFLOPs/img", "time @512"]);
    for (name, g, time) in r_points.iter().chain(&v_points) {
        t.row(&cells![name, format!("{g:.2}"), dnnperf_bench::ms(*time)]);
    }
    t.print();

    println!("\nfitted line slope (ms per GFLOP/img at BS=512):");
    println!("  ResNet family: {:.1}", r_slope * 1e3);
    println!("  VGG family:    {:.1}", v_slope * 1e3);
    println!(
        "ResNet/VGG slope ratio: {:.2}x (paper: families fall on different lines, VGG more efficient)",
        r_slope / v_slope
    );
}
