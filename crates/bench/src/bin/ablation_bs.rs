//! Ablation 4 (DESIGN.md): training at BS=512 only (the paper's design,
//! justified by O3) and predicting other batch sizes. Quantifies the
//! extrapolation cost relative to evaluating at the training batch size.

use dnnperf_bench::{banner, cells, collect_verbose, gpu, networks_in, standard_split, TextTable};
use dnnperf_core::{KwModel, Predictor};
use dnnperf_linreg::mean_abs_rel_error;

fn main() {
    banner(
        "Ablation: batch-size extrapolation",
        "KW trained at BS=512, evaluated at other batch sizes",
    );
    let zoo = dnnperf_bench::cnn_zoo();
    let a100 = gpu("A100");
    let ds = collect_verbose(&zoo, std::slice::from_ref(&a100), &[512]);
    let (train, test) = standard_split(&ds);
    let test_nets = networks_in(&zoo, &test);
    let kw = KwModel::train(&train, "A100").expect("train KW");

    let mut t = TextTable::new(&["eval batch", "test nets", "KW error"]);
    for bs in [16usize, 64, 128, 512] {
        // Fresh measurements at the evaluation batch size.
        let truth = collect_verbose(&test_nets, std::slice::from_ref(&a100), &[bs]);
        let mut preds = Vec::new();
        let mut meas = Vec::new();
        for net in networks_in(&zoo, &truth) {
            let m = truth
                .networks
                .iter()
                .find(|r| &*r.network == net.name())
                .expect("measured")
                .e2e_seconds;
            preds.push(kw.predict_network(&net, bs).expect("predict"));
            meas.push(m);
        }
        t.row(&cells![
            bs,
            preds.len(),
            format!("{:.2}%", mean_abs_rel_error(&preds, &meas) * 100.0)
        ]);
    }
    t.print();
    println!("\nexpected: best at the training batch size; moderate degradation at small batches,");
    println!("where the GPU is not fully utilised (the paper's stated limitation)");
}
