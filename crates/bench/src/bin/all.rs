//! Runs every experiment binary in sequence (tables, figures, ablations).
//!
//! `cargo run -p dnnperf-bench --release --bin all`

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig03",
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig11",
    "fig12",
    "fig13",
    "table2",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "ablation_driver",
    "ablation_cluster",
    "ablation_igkw",
    "ablation_bs",
    "ext_training",
    "ext_mig",
    "ext_overhead",
    "ext_zoo",
    "ext_fusion",
    "stats",
];

fn main() {
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe dir");
    // Forward engine flags (--threads / --cache-dir) to every experiment,
    // so one `all --cache-dir ...` run warms a shared dataset cache.
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let mut failed = Vec::new();
    for exp in EXPERIMENTS {
        println!();
        let status = Command::new(dir.join(exp))
            .args(&forwarded)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e} (build all bins first)"));
        if !status.success() {
            eprintln!("[all] {exp} FAILED with {status}");
            failed.push(*exp);
        }
    }
    println!();
    if failed.is_empty() {
        println!(
            "[all] {} experiments completed successfully",
            EXPERIMENTS.len()
        );
    } else {
        eprintln!("[all] failures: {failed:?}");
        std::process::exit(1);
    }
}
