//! Figure 7: different DNN layer types fall on different linear trend
//! lines of execution time vs FLOPs. Pooling and BN sit on less-efficient
//! lines (top-left); CONV and FC are more efficient.

use dnnperf_bench::{banner, cells, collect_verbose, gpu, TextTable};
use dnnperf_linreg::{fit, pearson};
use std::collections::BTreeMap;

fn main() {
    banner(
        "Figure 7",
        "Layer execution time vs layer FLOPs, per layer type (A100)",
    );
    // A structurally diverse subset keeps this figure quick; the trend per
    // type is what matters.
    let nets: Vec<_> = dnnperf_bench::cnn_zoo().into_iter().step_by(7).collect();
    let ds = collect_verbose(&nets, &[gpu("A100")], &[dnnperf_bench::train_batch()]);

    let mut per_type: BTreeMap<String, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for l in &ds.layers {
        if l.flops == 0 {
            continue;
        }
        let e = per_type.entry(l.layer_type.to_string()).or_default();
        e.0.push(l.flops as f64);
        e.1.push(l.seconds);
    }

    let mut t = TextTable::new(&[
        "layer type",
        "samples",
        "ns per MFLOP (slope)",
        "R^2",
        "log-log corr",
    ]);
    let mut slopes: BTreeMap<String, f64> = BTreeMap::new();
    for (tag, (xs, ys)) in &per_type {
        let Ok(f) = fit(xs, ys) else { continue };
        let lx: Vec<f64> = xs.iter().map(|x| x.log10()).collect();
        let ly: Vec<f64> = ys.iter().map(|y| y.log10()).collect();
        slopes.insert(tag.clone(), f.line.slope);
        t.row(&cells![
            tag,
            xs.len(),
            format!("{:.3}", f.line.slope * 1e15),
            format!("{:.3}", f.r2),
            format!("{:.3}", pearson(&lx, &ly))
        ]);
    }
    t.print();

    let eff = |tag: &str| slopes.get(tag).copied().unwrap_or(f64::NAN);
    println!("\nslope ratios vs conv (higher = less efficient per FLOP):");
    for tag in ["bn", "pool", "act", "fc"] {
        println!("  {tag:<5} {:.1}x", eff(tag) / eff("conv"));
    }
    println!("expected: bn/pool far above conv; fc near or below conv (paper Figure 7)");
}
