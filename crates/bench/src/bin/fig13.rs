//! Figure 13 and Section 5.4: the Kernel-Wise model's S-curve on the A100
//! test set (paper: 7% average error, asymmetric curve that almost never
//! underestimates), its per-GPU errors (6-9.4% across A40/A100/1080 Ti/
//! TITAN RTX/V100), and the transformer extension (~4.76% on A100).

use dnnperf_bench::{
    banner, cells, collect_verbose, gpu, networks_in, print_s_curve, standard_split, TextTable,
};
use dnnperf_core::workflow::predictions_vs_measurements;
use dnnperf_core::KwModel;
use dnnperf_data::collect::evaluation_gpus;
use dnnperf_linreg::mean_abs_rel_error;

fn main() {
    banner(
        "Figure 13",
        "KW model predicted/measured S-curve and per-GPU errors",
    );
    let zoo = dnnperf_bench::cnn_zoo();
    let batch = dnnperf_bench::train_batch();
    let ds = collect_verbose(&zoo, &evaluation_gpus(), &[batch]);
    let (train, test) = standard_split(&ds);

    // Main S-curve on A100.
    let model = KwModel::train(&train, "A100").expect("train KW");
    println!(
        "A100: {} distinct kernels -> {} regression models (paper: 182 -> 83)",
        model.num_kernels(),
        model.num_models()
    );
    let test_nets = networks_in(&zoo, &test);
    let pairs = predictions_vs_measurements(&model, &test_nets, batch, &test);
    let preds: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let meas: Vec<f64> = pairs.iter().map(|p| p.2).collect();
    print_s_curve(&preds, &meas);
    println!("paper reference: 0.07 average error on A100\n");

    // Per-GPU errors (Section 5.4).
    let mut t = TextTable::new(&["GPU", "test nets", "KW error", "paper"]);
    let paper_err = [
        ("A40", "6%"),
        ("A100", "7%"),
        ("GTX 1080 Ti", "7.8%"),
        ("TITAN RTX", "9.2%"),
        ("V100", "9.4%"),
    ];
    for (gname, paper) in paper_err {
        let m = KwModel::train(&train, gname).expect("train KW per GPU");
        let g_test = test.for_gpu(gname);
        let nets = networks_in(&zoo, &g_test);
        let pairs = predictions_vs_measurements(&m, &nets, batch, &g_test);
        let p: Vec<f64> = pairs.iter().map(|x| x.1).collect();
        let y: Vec<f64> = pairs.iter().map(|x| x.2).collect();
        t.row(&cells![
            gname,
            pairs.len(),
            format!("{:.1}%", mean_abs_rel_error(&p, &y) * 100.0),
            paper
        ]);
    }
    t.print();

    // Transformer extension.
    println!("\nKW extension for transformers (text classification, A100):");
    let tzoo = dnnperf_dnn::zoo::transformer_zoo();
    let tds = collect_verbose(&tzoo, &[gpu("A100")], &[batch]);
    let (ttrain, ttest) = standard_split(&tds);
    let tmodel = KwModel::train(&ttrain, "A100").expect("train KW on transformers");
    let tnets = networks_in(&tzoo, &ttest);
    let tpairs = predictions_vs_measurements(&tmodel, &tnets, batch, &ttest);
    let tp: Vec<f64> = tpairs.iter().map(|x| x.1).collect();
    let ty: Vec<f64> = tpairs.iter().map(|x| x.2).collect();
    println!(
        "  {} test transformers, average error {:.2}% (paper: ~4.76%)",
        tpairs.len(),
        mean_abs_rel_error(&tp, &ty) * 100.0
    );
}
