//! Figure 6: achieved computing throughput (TFLOPS) saturates once the
//! batch size is large enough; small batches under-utilise the GPU.

use dnnperf_bench::{banner, cells, gpu, measure, TextTable};
use dnnperf_dnn::zoo;

fn main() {
    banner("Figure 6", "Achieved TFLOPS vs batch size (A100)");
    let a100 = gpu("A100");
    let nets = [
        zoo::resnet::resnet50(),
        zoo::mobilenet::mobilenet_v2(1.0, 1.0),
        zoo::vgg::vgg16(),
    ];
    let batches = [8usize, 64, 128, 192, 256, 320, 384, 448, 512];

    let mut t = TextTable::new(&["batch", "ResNet-50", "MobileNetV2", "VGG-16"]);
    let mut first = Vec::new();
    let mut last = Vec::new();
    for (bi, &bs) in batches.iter().enumerate() {
        let tflops: Vec<f64> = nets
            .iter()
            .map(|n| {
                let time = measure(&a100, n, bs);
                n.total_flops() as f64 * bs as f64 / time / 1e12
            })
            .collect();
        if bi == 0 {
            first = tflops.clone();
        }
        if bi == batches.len() - 1 {
            last = tflops.clone();
        }
        t.row(&cells![
            bs,
            format!("{:.2}", tflops[0]),
            format!("{:.2}", tflops[1]),
            format!("{:.2}", tflops[2])
        ]);
    }
    t.print();

    println!("\nsaturation (TFLOPS @512 / TFLOPS @8):");
    for (i, net) in nets.iter().enumerate() {
        println!("  {:<12} {:.2}x", net.name(), last[i] / first[i]);
    }
    println!("expected: throughput rises with batch size and plateaus (paper Figure 6)");
}
