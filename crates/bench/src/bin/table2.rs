//! Table 2: modeling ResNet-50 inference on V100 — the KW model vs the
//! PKS/PKA sampled-simulation baselines, on both accuracy and runtime.
//!
//! Paper values (error %, hours): KW {2.6, 0.4, 0.8} in seconds;
//! PKS {6.4, 3.5, 2.2} in 8-18 h; PKA {18, 12, 24} in 1.3-1.6 h.
//! Absolute runtimes differ on our substrate; the *ordering* — KW orders of
//! magnitude faster and more accurate, PKS slower but closer than PKA —
//! is the reproduced shape.

use dnnperf_baseline::{pka_estimate, pks_estimate, CycleSim};
use dnnperf_bench::{banner, cells, collect_verbose, gpu, measure, TextTable};
use dnnperf_core::{KwModel, Predictor};
use dnnperf_dnn::zoo;
use std::time::Instant;

fn main() {
    banner("Table 2", "ResNet-50 on V100: KW model vs PKS vs PKA");
    let v100 = gpu("V100");
    let target = zoo::resnet::resnet50();

    // Train KW on V100 measurements of the zoo, with ResNet-50 held out.
    let nets: Vec<_> = dnnperf_bench::cnn_zoo()
        .into_iter()
        .filter(|n| n.name() != target.name())
        .step_by(3)
        .collect();
    // V100 has 16 GB: train at a batch size the whole subset fits at.
    let ds = collect_verbose(&nets, std::slice::from_ref(&v100), &[128]);
    let t0 = Instant::now();
    let kw = KwModel::train(&ds, "V100").expect("train KW");
    let train_time = t0.elapsed();
    eprintln!(
        "[train] KW model trained in {:.2}s",
        train_time.as_secs_f64()
    );

    let sim = CycleSim::new(v100.clone());
    let mut t = TextTable::new(&[
        "Batch Size",
        "KW err",
        "PKS err",
        "PKA err",
        "KW time",
        "PKS time",
        "PKA time",
        "FullSim time",
    ]);
    for bs in [64usize, 128, 256] {
        let measured = measure(&v100, &target, bs);
        let err = |p: f64| format!("{:.1}%", (p - measured).abs() / measured * 100.0);

        let t0 = Instant::now();
        let kw_pred = kw.predict_network(&target, bs).expect("predict");
        let kw_time = t0.elapsed();

        let t0 = Instant::now();
        let pks = pks_estimate(&sim, &target, bs, 3);
        let pks_time = t0.elapsed();

        let t0 = Instant::now();
        let pka = pka_estimate(&sim, &target, bs);
        let pka_time = t0.elapsed();

        let t0 = Instant::now();
        let full = sim.simulate_network(&target, bs);
        let full_time = t0.elapsed();

        t.row(&cells![
            bs,
            err(kw_pred),
            err(pks.predicted_seconds),
            err(pka.predicted_seconds),
            format!("{:.1} us", kw_time.as_secs_f64() * 1e6),
            format!("{:.1} ms", pks_time.as_secs_f64() * 1e3),
            format!("{:.1} ms", pka_time.as_secs_f64() * 1e3),
            format!("{:.1} ms", full_time.as_secs_f64() * 1e3)
        ]);
        println!(
            "  bs={bs}: measured {}, KW {}, PKS {}, PKA {}, full-sim {}",
            dnnperf_bench::ms(measured),
            dnnperf_bench::ms(kw_pred),
            dnnperf_bench::ms(pks.predicted_seconds),
            dnnperf_bench::ms(pka.predicted_seconds),
            dnnperf_bench::ms(full.predicted_seconds)
        );
    }
    println!();
    t.print();
    println!("\nexpected shape: KW most accurate and orders of magnitude faster;");
    println!("PKS slower but more accurate than PKA (paper Table 2)");
}
