//! Figure 19 (Case Study 3): scheduling a queue of nine networks across
//! A40 and TITAN RTX using predicted times, brute-forcing the assignment.
//! Paper: the predicted-time schedule is identical to the oracle schedule.

use dnnperf_bench::{banner, cells, collect_verbose, gpu, measure, TextTable};
use dnnperf_core::{KwModel, Predictor};
use dnnperf_dnn::zoo;
use dnnperf_sched::{brute_force_schedule, evaluate_makespan, lpt_schedule, JobTimes};
use std::time::Instant;

fn main() {
    banner(
        "Figure 19",
        "Queue scheduling on A40 + TITAN RTX with predicted times",
    );
    let gpus = [gpu("A40"), gpu("TITAN RTX")];
    let batch = 128usize;
    let train_nets = dnnperf_bench::cnn_zoo();
    let ds = collect_verbose(&train_nets, &gpus, &[batch]);
    let models: Vec<KwModel> = gpus
        .iter()
        .map(|g| KwModel::train(&ds, &g.name).expect("train KW"))
        .collect();

    // The paper's nine-network queue.
    let nets = [
        zoo::resnet::resnet44(),
        zoo::resnet::resnet50(),
        zoo::resnet::resnet62(),
        zoo::resnet::resnet77(),
        zoo::densenet::densenet121(),
        zoo::densenet::densenet161(),
        zoo::densenet::densenet169(),
        zoo::densenet::densenet201(),
        zoo::shufflenet::shufflenet_v1(3, 1.0, &[4, 8, 4]),
    ];

    let predicted: Vec<JobTimes> = nets
        .iter()
        .map(|n| JobTimes {
            name: n.name().to_string(),
            per_gpu: models
                .iter()
                .map(|m| m.predict_network(n, batch).expect("predict"))
                .collect(),
        })
        .collect();
    let actual: Vec<JobTimes> = nets
        .iter()
        .map(|n| JobTimes {
            name: n.name().to_string(),
            per_gpu: gpus.iter().map(|g| measure(g, n, batch)).collect(),
        })
        .collect();

    let t0 = Instant::now();
    let planned = brute_force_schedule(&predicted);
    let search_time = t0.elapsed();
    let oracle = brute_force_schedule(&actual);
    let greedy = lpt_schedule(&predicted);

    let mut t = TextTable::new(&[
        "network",
        "planned GPU",
        "oracle GPU",
        "pred time",
        "actual time",
    ]);
    for (j, net) in nets.iter().enumerate() {
        let g = planned.assignment[j];
        t.row(&cells![
            net.name(),
            gpus[g].name,
            gpus[oracle.assignment[j]].name,
            dnnperf_bench::ms(predicted[j].per_gpu[g]),
            dnnperf_bench::ms(actual[j].per_gpu[g])
        ]);
    }
    t.print();

    let planned_real = evaluate_makespan(&actual, &planned.assignment);
    let greedy_real = evaluate_makespan(&actual, &greedy.assignment);
    println!("\nmakespans (evaluated with ACTUAL times):");
    println!(
        "  model-planned brute force: {}",
        dnnperf_bench::ms(planned_real)
    );
    println!(
        "  model-planned greedy LPT:  {}",
        dnnperf_bench::ms(greedy_real)
    );
    println!(
        "  oracle optimum:            {}",
        dnnperf_bench::ms(oracle.makespan)
    );
    println!(
        "  gap to oracle: {:.2}%  (brute-force search over {} assignments took {:.1} ms)",
        (planned_real / oracle.makespan - 1.0) * 100.0,
        1usize << nets.len(),
        search_time.as_secs_f64() * 1e3
    );
    println!("paper reference: the dispatching scheme is identical to the oracle solution");
}
