//! Extension experiment (paper future work): "emerging GPU hardware
//! (e.g., multi-instance GPUs)".
//!
//! NVIDIA MIG partitions an A100 into fractional instances: SMs, memory
//! bandwidth and capacity all scale with the slice. Because the IGKW model
//! prices GPUs from their bandwidth, it can predict MIG instances it has
//! never measured — we validate against ground-truth measurements of the
//! sliced device.

use dnnperf_bench::{banner, cells, collect_verbose, gpu, TextTable};
use dnnperf_core::IgkwModel;
use dnnperf_dnn::zoo;
use dnnperf_gpu::{GpuSpec, Profiler};
use dnnperf_linreg::mean_abs_rel_error;

fn main() {
    banner(
        "Extension: multi-instance GPU",
        "IGKW predictions for A100 MIG slices",
    );
    // Train the inter-GPU model on full (non-MIG) GPUs only.
    let train_gpus: Vec<GpuSpec> = ["A100", "A40", "GTX 1080 Ti", "V100"]
        .iter()
        .map(|n| gpu(n))
        .collect();
    let nets: Vec<_> = dnnperf_bench::cnn_zoo().into_iter().step_by(4).collect();
    let batch = 64usize; // small enough for the smallest slice's memory
    let ds = collect_verbose(&nets, &train_gpus, &[128]);
    let model = IgkwModel::train(&ds, &train_gpus).expect("train IGKW");

    let a100 = gpu("A100");
    let workloads = [
        zoo::resnet::resnet50(),
        zoo::densenet::densenet121(),
        zoo::mobilenet::mobilenet_v2(1.0, 1.0),
    ];
    let mut t = TextTable::new(&[
        "MIG slice",
        "ResNet-50 meas",
        "ResNet-50 pred",
        "DenseNet-121 meas",
        "DenseNet-121 pred",
        "error (3 nets)",
    ]);
    for (num, den) in [(1u32, 7u32), (2, 7), (3, 7), (4, 7), (7, 7)] {
        let slice = a100.mig_slice(num, den);
        let prof = Profiler::new(slice.clone());
        let mut preds = Vec::new();
        let mut meas = Vec::new();
        for net in &workloads {
            match prof.profile(net, batch) {
                Ok(trace) => {
                    preds.push(
                        model
                            .predict_network_on(net, batch, &slice)
                            .expect("predict"),
                    );
                    meas.push(trace.e2e_seconds);
                }
                Err(e) => println!("  {}: {net} skipped ({e})", slice.name, net = net.name()),
            }
        }
        let err = mean_abs_rel_error(&preds, &meas);
        t.row(&cells![
            format!("{num}/{den}"),
            dnnperf_bench::ms(meas[0]),
            dnnperf_bench::ms(preds[0]),
            dnnperf_bench::ms(meas[1]),
            dnnperf_bench::ms(preds[1]),
            format!("{:.1}%", err * 100.0)
        ]);
    }
    t.print();
    println!("\nexpected: bandwidth-based transfer tracks MIG slices; errors grow on the");
    println!("smallest slices where fixed overheads and partial saturation bite hardest");
}
