//! Table 1: GPUs used in the experiments.

use dnnperf_bench::{banner, cells, TextTable};
use dnnperf_gpu::GpuSpec;

fn main() {
    banner("Table 1", "GPUs used in the experiments");
    let mut t = TextTable::new(&[
        "GPU",
        "Bandwidth (GB/s)",
        "Memory (GB)",
        "TFLOPS (FP32)",
        "Tensor Cores",
    ]);
    for g in GpuSpec::all() {
        t.row(&cells![
            g.name,
            g.bandwidth_gbps,
            g.memory_gb,
            g.fp32_tflops,
            g.tensor_cores
        ]);
    }
    t.print();
}
