//! Extension experiment: out-of-family generalization.
//!
//! The KW model is trained on the paper's 646-network dataset (ResNet /
//! VGG / DenseNet / MobileNet / ShuffleNet / SqueezeNet / AlexNet families)
//! and asked to predict architectures from families it has *never seen*:
//! GoogLeNet (four-way branching, 5x5 convolutions on large maps) and
//! ResNeXt (grouped 3x3 convolutions). This probes the claim behind the
//! kernel-level approach — kernels, not architectures, are the unit of
//! generalization — and exposes its limit when a novel architecture
//! exercises kernels the training set never ran (the paper's own
//! limitation: "if one GPU uses a very different kernel ... we cannot
//! predict the performance reliably").

use dnnperf_bench::{banner, cells, collect_verbose, gpu, measure, TextTable};
use dnnperf_core::{KwModel, LwModel, Predictor};
use dnnperf_dnn::zoo;
use dnnperf_linreg::mean_abs_rel_error;

fn main() {
    banner(
        "Extension: out-of-family networks",
        "KW/LW on GoogLeNet and ResNeXt (A100)",
    );
    let a100 = gpu("A100");
    let batch = 128usize;
    let ds = collect_verbose(
        &dnnperf_bench::cnn_zoo(),
        std::slice::from_ref(&a100),
        &[batch],
    );
    let kw = KwModel::train(&ds, "A100").expect("train KW");
    let lw = LwModel::train(&ds, "A100").expect("train LW");

    let mut t = TextTable::new(&["network", "measured", "KW pred", "KW err", "LW err"]);
    let (mut kw_p, mut lw_p, mut meas) = (Vec::new(), Vec::new(), Vec::new());
    for net in zoo::extended_zoo() {
        let m = measure(&a100, &net, batch);
        let k = kw.predict_network(&net, batch).expect("KW predict");
        let l = lw.predict_network(&net, batch).expect("LW predict");
        t.row(&cells![
            net.name(),
            dnnperf_bench::ms(m),
            dnnperf_bench::ms(k),
            format!("{:+.1}%", (k / m - 1.0) * 100.0),
            format!("{:+.1}%", (l / m - 1.0) * 100.0)
        ]);
        kw_p.push(k);
        lw_p.push(l);
        meas.push(m);
    }
    t.print();
    println!(
        "\naverage error on unseen families: KW {:.1}%, LW {:.1}%",
        mean_abs_rel_error(&kw_p, &meas) * 100.0,
        mean_abs_rel_error(&lw_p, &meas) * 100.0
    );
    println!("expected: KW degrades gracefully via nearest-signature fallback, still");
    println!("beating the layer-wise model; errors exceed the in-family 5-7%");
}
