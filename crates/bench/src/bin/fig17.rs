//! Figure 17 (Case Study 2): speedup over a 16 GB/s network link for
//! networks running on a memory-disaggregated GPU system, as the link
//! bandwidth grows. Different networks need different bandwidths to keep
//! the GPU fully utilised (paper: ResNet ~128 GB/s, DenseNet-121 ~256 GB/s).

use dnnperf_bench::{banner, collect_verbose, gpu, TextTable};
use dnnperf_core::KwModel;
use dnnperf_dnn::zoo;
use dnnperf_simkit::{disagg::layer_work_from_model, simulate_disaggregated, DisaggConfig};
use std::time::Instant;

fn main() {
    banner(
        "Figure 17",
        "Disaggregated memory: speedup over a 16 GB/s link",
    );
    let a100 = gpu("A100");
    // Compute times come from the KW model, exactly as the paper wires its
    // model into an event-driven network simulation.
    let train_nets: Vec<_> = dnnperf_bench::cnn_zoo().into_iter().step_by(3).collect();
    // Train at a small batch so the per-kernel intercepts reflect launch
    // overheads, not large-batch minimum times: the case study runs
    // latency-critical single-sample inference.
    let ds = collect_verbose(&train_nets, std::slice::from_ref(&a100), &[4]);
    let kw = KwModel::train(&ds, "A100").expect("train KW");

    let nets = [
        zoo::resnet::resnet50(),
        zoo::resnet::resnet77(),
        zoo::densenet::densenet121(),
        zoo::densenet::densenet161(),
        zoo::shufflenet::shufflenet_v1(3, 1.0, &[4, 8, 4]),
    ];
    // Single-sample inference: the regime where parameter streaming
    // competes with compute (large batches amortise the weights and the
    // link never matters).
    let batch = 1usize;
    let bandwidths = [16.0, 32.0, 64.0, 128.0, 256.0, 512.0];

    let t_start = Instant::now();
    let mut t = TextTable::new(&[
        "network", "16 GB/s", "32 GB/s", "64 GB/s", "128 GB/s", "256 GB/s", "512 GB/s",
    ]);
    for net in &nets {
        let work = layer_work_from_model(&kw, net, batch);
        let base = simulate_disaggregated(
            &work,
            DisaggConfig {
                link_bandwidth_gbps: 16.0,
                lookahead: 2,
            },
        )
        .total_seconds;
        let mut cells = vec![net.name().to_string()];
        for &bw in &bandwidths {
            let r = simulate_disaggregated(
                &work,
                DisaggConfig {
                    link_bandwidth_gbps: bw,
                    lookahead: 2,
                },
            );
            cells.push(format!("{:.2}x", base / r.total_seconds));
        }
        t.row(&cells);
    }
    t.print();
    println!(
        "\nwhole experiment (5 networks x 6 bandwidths) simulated in {:.2} s on this machine",
        t_start.elapsed().as_secs_f64()
    );
    println!("paper reference: ResNet saturates around 128 GB/s, DenseNet-121 needs ~256 GB/s;");
    println!("the paper's full sweep ran in under 5 seconds on a laptop — same ballpark here.");
}
