//! Ablation 3 (DESIGN.md): the IGKW transfer metric. O6 argues slopes
//! track 1/bandwidth; the rejected alternative tracks 1/peak-FLOPS.
//!
//! Two held-out targets are evaluated: TITAN RTX (the paper's Figure 14
//! setting, where bandwidth and compute are balanced so both metrics limp
//! along) and the A40 — a compute-heavy, bandwidth-light GPU, exactly the
//! "imbalanced" corner the paper's limitation section warns about. The A40
//! is where the wrong metric falls apart.

use dnnperf_bench::{banner, cells, collect_verbose, gpu, networks_in, standard_split, TextTable};
use dnnperf_core::intergpu::TransferMetric;
use dnnperf_core::IgkwModel;
use dnnperf_data::Dataset;
use dnnperf_gpu::GpuSpec;
use dnnperf_linreg::mean_abs_rel_error;

#[allow(clippy::too_many_arguments)] // experiment-harness helper, not API
fn eval(
    train: &Dataset,
    train_gpus: &[GpuSpec],
    target: &GpuSpec,
    truth: &Dataset,
    zoo: &[dnnperf_dnn::Network],
    batch: usize,
    metric: TransferMetric,
    floor: bool,
) -> f64 {
    let model = IgkwModel::train_with_options(train, train_gpus, metric, floor).expect("train");
    let mut preds = Vec::new();
    let mut meas = Vec::new();
    for net in networks_in(zoo, truth) {
        let m = truth
            .networks
            .iter()
            .find(|r| &*r.network == net.name())
            .expect("measured")
            .e2e_seconds;
        preds.push(
            model
                .predict_network_on(&net, batch, target)
                .expect("predict"),
        );
        meas.push(m);
    }
    mean_abs_rel_error(&preds, &meas)
}

fn main() {
    banner(
        "Ablation: IGKW transfer metric",
        "slope ~ 1/bandwidth vs slope ~ 1/peak-FLOPS",
    );
    let zoo = dnnperf_bench::cnn_zoo();
    let batch = dnnperf_bench::train_batch();

    let mut t = TextTable::new(&[
        "held-out GPU",
        "1/bandwidth",
        "1/bandwidth (origin)",
        "1/peak-FLOPS",
        "1/peak-FLOPS (origin)",
    ]);
    for (target_name, others) in [
        ("TITAN RTX", ["A100", "A40", "GTX 1080 Ti"]),
        ("A40", ["A100", "TITAN RTX", "GTX 1080 Ti"]),
    ] {
        let target = gpu(target_name);
        let train_gpus: Vec<GpuSpec> = others.iter().map(|n| gpu(n)).collect();
        let ds = collect_verbose(&zoo, &train_gpus, &[batch]);
        let (train, test) = standard_split(&ds);
        let test_nets = networks_in(&zoo, &test);
        let truth = collect_verbose(&test_nets, std::slice::from_ref(&target), &[batch]);

        let cell = |metric, floor| {
            format!(
                "{:.1}%",
                eval(
                    &train,
                    &train_gpus,
                    &target,
                    &truth,
                    &zoo,
                    batch,
                    metric,
                    floor
                ) * 100.0
            )
        };
        t.row(&cells![
            target_name,
            cell(TransferMetric::Bandwidth, true),
            cell(TransferMetric::Bandwidth, false),
            cell(TransferMetric::PeakFlops, true),
            cell(TransferMetric::PeakFlops, false)
        ]);
    }
    t.print();
    println!("\nexpected: bandwidth transfers cleanly to both GPUs; peak-FLOPS scaling");
    println!("collapses on the compute-heavy, bandwidth-light A40 (O6)");
}
