//! Figure 12: the Layer-Wise model's S-curve on the A100 test set.
//! Paper: average error 0.28.

use dnnperf_bench::{banner, collect_verbose, gpu, networks_in, print_s_curve, standard_split};
use dnnperf_core::workflow::predictions_vs_measurements;
use dnnperf_core::LwModel;

fn main() {
    banner("Figure 12", "LW model predicted/measured S-curve (A100)");
    let zoo = dnnperf_bench::cnn_zoo();
    let batch = dnnperf_bench::train_batch();
    let ds = collect_verbose(&zoo, &[gpu("A100")], &[batch]);
    let (train, test) = standard_split(&ds);
    let test_nets = networks_in(&zoo, &test);

    let model = LwModel::train(&train, "A100").expect("train LW");
    println!("layer types covered: {:?}", model.known_types());
    let pairs = predictions_vs_measurements(&model, &test_nets, batch, &test);
    let preds: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let meas: Vec<f64> = pairs.iter().map(|p| p.2).collect();
    print_s_curve(&preds, &meas);
    println!("paper reference: average error 0.28 on A100 (a modest gain over E2E)");
}
