//! Figure 15 (Case Study 1): predicted ResNet-50 execution time on a TITAN
//! RTX with modified memory bandwidth. Paper: performance improves with
//! bandwidth; the ideal range is 600-800 GB/s and the native 672 GB/s falls
//! inside it.

use dnnperf_bench::{bandwidth_sweep, banner};
use dnnperf_dnn::zoo;

fn main() {
    banner(
        "Figure 15",
        "Predicted ResNet-50 time vs TITAN RTX memory bandwidth",
    );
    bandwidth_sweep(&zoo::resnet::resnet50(), 128);
    println!("paper reference: ideal bandwidth range 600-800 GB/s; native 672 GB/s inside it");
}
