//! Figure 3: execution time of all networks against their FLOPs (batch
//! size >= 4). Expected shape: a linear trend in log-log space with a band
//! about one order of magnitude wide, bending upward at small FLOPs where
//! overheads dominate.

use dnnperf_bench::{banner, cells, collect_verbose, gpu, TextTable};
use dnnperf_linreg::pearson;

fn main() {
    banner("Figure 3", "Execution time vs FLOPs, all networks, BS >= 4");
    let nets = dnnperf_bench::cnn_zoo();
    let a100 = gpu("A100");
    let ds = collect_verbose(&nets, &[a100], &[4, 64, 512]);

    // Log-log correlation over all runs.
    let (mut lx, mut ly) = (Vec::new(), Vec::new());
    for r in &ds.networks {
        lx.push((r.flops as f64).log10());
        ly.push(r.e2e_seconds.log10());
    }
    println!(
        "runs: {}   log-log Pearson correlation: {:.3}",
        ds.networks.len(),
        pearson(&lx, &ly)
    );

    // Per-GFLOPs-decade band statistics: the paper's ~10x-wide band.
    let mut t = TextTable::new(&[
        "GFLOPs decade",
        "runs",
        "min (ms)",
        "median (ms)",
        "max (ms)",
        "band (max/min)",
    ]);
    for decade in -2..4i32 {
        let lo = 10f64.powi(decade);
        let hi = lo * 10.0;
        let times: Vec<f64> = ds
            .networks
            .iter()
            .filter(|r| {
                let g = r.flops as f64 / 1e9;
                g >= lo && g < hi
            })
            .map(|r| r.e2e_seconds * 1e3)
            .collect();
        if times.len() < 3 {
            continue;
        }
        // min/max by one fold and the median by quickselect — no full sort.
        let (min, max) = times
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &t| {
                (lo.min(t), hi.max(t))
            });
        t.row(&cells![
            format!("[{lo:.0e}, {hi:.0e})"),
            times.len(),
            format!("{min:.2}"),
            format!("{:.2}", dnnperf_linreg::median(&times)),
            format!("{max:.2}"),
            format!("{:.1}x", max / min)
        ]);
    }
    t.print();
    println!("\nexpected: correlation near 1; a wide band (paper: ~10x at a single batch\nsize; wider here because saturated and unsaturated batch sizes share decades)");
}
