//! Figure 5: DNN execution time is linearly correlated with batch size,
//! with a network-specific slope.

use dnnperf_bench::{banner, cells, gpu, measure, TextTable};
use dnnperf_dnn::zoo;
use dnnperf_linreg::fit;

fn main() {
    banner("Figure 5", "Execution time vs batch size (A100)");
    let a100 = gpu("A100");
    let nets = [
        zoo::resnet::resnet50(),
        zoo::mobilenet::mobilenet_v2(1.0, 1.0),
        zoo::vgg::vgg16(),
    ];
    let batches: Vec<usize> = (0..11).map(|i| 2 + 8 * i).collect(); // 2..82

    let mut t = TextTable::new(&["batch", "ResNet-50", "MobileNetV2", "VGG-16"]);
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); nets.len()];
    for &bs in &batches {
        let times: Vec<f64> = nets.iter().map(|n| measure(&a100, n, bs)).collect();
        for (s, &v) in series.iter_mut().zip(&times) {
            s.push(v);
        }
        t.row(&cells![
            bs,
            dnnperf_bench::ms(times[0]),
            dnnperf_bench::ms(times[1]),
            dnnperf_bench::ms(times[2])
        ]);
    }
    t.print();

    println!("\nlinearity of time vs batch size:");
    let xs: Vec<f64> = batches.iter().map(|&b| b as f64).collect();
    for (net, ys) in nets.iter().zip(&series) {
        let f = fit(&xs, ys).expect("fit");
        println!(
            "  {:<12} slope {:.4} ms/img, R^2 = {:.4}",
            net.name(),
            f.line.slope * 1e3,
            f.r2
        );
    }
    println!("expected: R^2 near 1 for each network, slopes differ per network");
}
