//! Figure 16 (Case Study 1): predicted DenseNet-169 execution time on a
//! TITAN RTX with modified memory bandwidth. Paper: DenseNet-169 is less
//! bandwidth-hungry — the optimal range is 500-700 GB/s, so a customized
//! GPU could ship less bandwidth without losing performance.

use dnnperf_bench::{bandwidth_sweep, banner};
use dnnperf_dnn::zoo;

fn main() {
    banner(
        "Figure 16",
        "Predicted DenseNet-169 time vs TITAN RTX memory bandwidth",
    );
    bandwidth_sweep(&zoo::densenet::densenet169(), 128);
    println!("paper reference: optimal range 500-700 GB/s; bandwidth could be reduced for DenseNet workloads");
}
