//! Ablation 1 (DESIGN.md): kernel classification by best-R² driver vs
//! forcing every kernel onto the FLOPs (operation) driver. Quantifies how
//! much of the KW model's accuracy comes from O5's input/operation/output
//! taxonomy.

use dnnperf_bench::{banner, collect_verbose, gpu, networks_in, standard_split};
use dnnperf_core::kernelwise::KwFlopsOnlyModel;
use dnnperf_core::workflow::predictions_vs_measurements;
use dnnperf_core::KwModel;
use dnnperf_linreg::mean_abs_rel_error;

fn main() {
    banner(
        "Ablation: driver classification",
        "KW (classified) vs KW (FLOPs-only)",
    );
    let zoo = dnnperf_bench::cnn_zoo();
    let batch = dnnperf_bench::train_batch();
    let ds = collect_verbose(&zoo, &[gpu("A100")], &[batch]);
    let (train, test) = standard_split(&ds);
    let test_nets = networks_in(&zoo, &test);

    let kw = KwModel::train(&train, "A100").expect("train KW");
    let flops_only = KwFlopsOnlyModel::train(&train, "A100").expect("train ablated KW");

    let err = |pairs: Vec<(String, f64, f64)>| {
        let p: Vec<f64> = pairs.iter().map(|x| x.1).collect();
        let y: Vec<f64> = pairs.iter().map(|x| x.2).collect();
        mean_abs_rel_error(&p, &y)
    };
    let e_kw = err(predictions_vs_measurements(&kw, &test_nets, batch, &test));
    let e_fl = err(predictions_vs_measurements(
        &flops_only,
        &test_nets,
        batch,
        &test,
    ));

    println!("KW with driver classification : {:.2}%", e_kw * 100.0);
    println!("KW forced to FLOPs driver     : {:.2}%", e_fl * 100.0);
    println!(
        "classification improves accuracy by {:.2} percentage points",
        (e_fl - e_kw) * 100.0
    );
}
