//! Figure 8: classifying kernels as input-, operation- or output-driven
//! amplifies the linear relationship. For each kernel class, the regression
//! against its own driver variable has high R²; against the other two
//! drivers the correlation is lower.

use dnnperf_bench::{banner, cells, collect_verbose, gpu, TextTable};
use dnnperf_core::{classify_kernels, Driver};

fn main() {
    banner(
        "Figure 8",
        "Kernel classification: R^2 against input / operation / output drivers (A100)",
    );
    let nets: Vec<_> = dnnperf_bench::cnn_zoo().into_iter().step_by(4).collect();
    let ds = collect_verbose(&nets, &[gpu("A100")], &[dnnperf_bench::train_batch()]);
    let classes = classify_kernels(&ds.kernels);

    // Mean R^2 of each class (rows) against each candidate driver (cols),
    // weighted by sample count.
    let mut sums = [[0.0f64; 3]; 3];
    let mut weights = [[0.0f64; 3]; 3];
    let mut counts = [0usize; 3];
    for c in classes.values() {
        let row = c.driver.index();
        counts[row] += 1;
        for col in 0..3 {
            if c.r2[col].is_finite() {
                sums[row][col] += c.r2[col].max(0.0) * c.n as f64;
                weights[row][col] += c.n as f64;
            }
        }
    }

    let mut t = TextTable::new(&[
        "kernel class",
        "kernels",
        "R^2 vs input",
        "R^2 vs operation",
        "R^2 vs output",
    ]);
    for driver in Driver::all() {
        let row = driver.index();
        let cell = |col: usize| {
            if weights[row][col] == 0.0 {
                "-".to_string()
            } else {
                format!("{:.3}", sums[row][col] / weights[row][col])
            }
        };
        t.row(&cells![
            format!("{driver}-driven"),
            counts[row],
            cell(0),
            cell(1),
            cell(2)
        ]);
    }
    t.print();

    // The paper's headline: on the diagonal, correlation is high.
    let mut diag_ok = 0;
    for (i, &c) in counts.iter().enumerate() {
        if c > 0 && weights[i][i] > 0.0 && sums[i][i] / weights[i][i] > 0.8 {
            diag_ok += 1;
        }
    }
    println!("\nclasses with mean same-driver R^2 > 0.8: {diag_ok}/3");
    println!("expected: high R^2 on the diagonal, lower off-diagonal (paper Figure 8)");
}
