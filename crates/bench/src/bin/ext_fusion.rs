//! Extension experiment: runtime operator fusion.
//!
//! Deployment runtimes (cuDNN runtime fusion, TensorRT) fold BatchNorm and
//! activation epilogues into the preceding convolution — the behaviour
//! nn-Meter (related work) is built around. This experiment measures the
//! fusion speedup on the zoo and shows the data-driven KW model handles a
//! fused runtime without code changes — and quantifies the accuracy cost of
//! its layer-local mapping assumption once fusion makes kernel selection
//! context-dependent.

use dnnperf_bench::{banner, cells, gpu, networks_in, standard_split, TextTable};
use dnnperf_core::workflow::predictions_vs_measurements;
use dnnperf_core::KwModel;
use dnnperf_data::collect::trace_rows;
use dnnperf_data::Dataset;
use dnnperf_gpu::{Fusion, Profiler};
use dnnperf_linreg::{mean_abs_rel_error, median};

fn collect_fused(nets: &[dnnperf_dnn::Network], prof: &Profiler, batch: usize) -> Dataset {
    let mut ds = Dataset::new();
    for net in nets {
        if let Ok(trace) = prof.profile(net, batch) {
            let (n, l, k) = trace_rows(&trace, net);
            ds.networks.push(n);
            ds.layers.extend(l);
            ds.kernels.extend(k);
        }
    }
    ds
}

fn main() {
    banner(
        "Extension: operator fusion",
        "Conv+BN+Act fusion speedups and KW accuracy (A100)",
    );
    let a100 = gpu("A100");
    let batch = 128usize;
    let zoo: Vec<_> = dnnperf_bench::cnn_zoo().into_iter().step_by(2).collect();

    let eager = Profiler::new(a100.clone());
    let fused = Profiler::new(a100).with_fusion(Fusion::ConvBnAct);

    // Fusion speedup across the zoo.
    let mut speedups = Vec::new();
    let mut kernel_cut = Vec::new();
    for net in &zoo {
        let (Ok(e), Ok(f)) = (eager.profile(net, batch), fused.profile(net, batch)) else {
            continue;
        };
        speedups.push(e.e2e_seconds / f.e2e_seconds);
        kernel_cut.push(1.0 - f.kernel_count() as f64 / e.kernel_count() as f64);
    }
    println!(
        "fusion over {} networks: median speedup {:.2}x (max {:.2}x), median kernel-count cut {:.0}%",
        speedups.len(),
        median(&speedups),
        speedups.iter().cloned().fold(0.0, f64::max),
        median(&kernel_cut) * 100.0
    );

    // KW accuracy under a fused runtime: train and evaluate on fused traces.
    let fused_ds = collect_fused(&zoo, &fused, batch);
    let (train, test) = standard_split(&fused_ds);
    let kw = KwModel::train(&train, "A100").expect("train KW on fused traces");
    let test_nets = networks_in(&zoo, &test);
    let pairs = predictions_vs_measurements(&kw, &test_nets, batch, &test);
    let p: Vec<f64> = pairs.iter().map(|x| x.1).collect();
    let y: Vec<f64> = pairs.iter().map(|x| x.2).collect();

    // Reference: the same split measured eagerly.
    let eager_ds = collect_fused(&zoo, &eager, batch);
    let (etrain, etest) = standard_split(&eager_ds);
    let ekw = KwModel::train(&etrain, "A100").expect("train KW on eager traces");
    let enets = networks_in(&zoo, &etest);
    let epairs = predictions_vs_measurements(&ekw, &enets, batch, &etest);
    let ep: Vec<f64> = epairs.iter().map(|x| x.1).collect();
    let ey: Vec<f64> = epairs.iter().map(|x| x.2).collect();

    let mut t = TextTable::new(&["runtime", "test nets", "KW error"]);
    t.row(&cells![
        "eager (paper setting)",
        epairs.len(),
        format!("{:.2}%", mean_abs_rel_error(&ep, &ey) * 100.0)
    ]);
    t.row(&cells![
        "fused (Conv+BN+Act)",
        pairs.len(),
        format!("{:.2}%", mean_abs_rel_error(&p, &y) * 100.0)
    ]);
    t.print();
    println!("\nfinding: fusion delivers a real speedup, and the KW model still works on");
    println!("fused traces — but its error roughly doubles, because fusion makes the");
    println!("layer-to-kernel mapping CONTEXT-dependent (the same conv signature fuses in");
    println!("one graph position and not in another), breaking the paper's layer-local");
    println!("lookup assumption. This is precisely the problem nn-Meter's fusion-aware");
    println!("kernel detection (related work) is built to solve.");
}
