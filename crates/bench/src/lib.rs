//! Shared support for the dnnperf experiment harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's per-experiment index). This library holds the pieces
//! they share: dataset construction, the canonical train/test split,
//! measurement shortcuts and plain-text table/S-curve printers.

#![warn(missing_docs)]

pub mod timer;

use dnnperf_data::collect::{collect_report_opts, collect_training_report_opts, TRAIN_BATCH};
use dnnperf_data::{split::split_dataset, CollectOptions, CollectReport, Dataset};
use dnnperf_dnn::{zoo, Network};
use dnnperf_gpu::{FaultPlan, GpuSpec, Profiler};
use std::collections::BTreeSet;
use std::time::Instant;

/// The random seed of the canonical train/test split used by every
/// experiment (the paper re-randomises per run; we fix it so results are
/// reproducible).
pub const SPLIT_SEED: u64 = 2023;

/// Percentage points of the S-curve X axis in Figures 11-14.
pub const S_CURVE_PERCENTS: [f64; 7] = [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0];

/// Prints the experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// The collection engine options every experiment binary uses:
/// environment overrides (`DNNPERF_THREADS`, `DNNPERF_CACHE_DIR`,
/// `DNNPERF_FAULT_RATE`, `DNNPERF_FAULT_SEED`, `DNNPERF_RETRIES`) plus the
/// command-line flags `--threads N`, `--cache-dir PATH`, `--retries N`,
/// `--fault-rate F` and `--fault-seed S` (also accepted in `--flag=value`
/// form), with the command line winning.
///
/// `--fault-rate` in `(0, 1]` arms the deterministic transient-only fault
/// plan (and the ingest outlier screen); `--fault-rate 0` disarms a plan
/// armed via the environment. `--fault-seed` picks the fault universe.
pub fn collect_options() -> CollectOptions {
    collect_options_from(std::env::args().skip(1), CollectOptions::from_env())
}

/// [`collect_options`] with explicit arguments and base — testable and
/// reusable by the `all` driver when forwarding flags.
pub fn collect_options_from(
    args: impl IntoIterator<Item = String>,
    base: CollectOptions,
) -> CollectOptions {
    let mut opts = base;
    let mut fault_rate: Option<f64> = None;
    let mut fault_seed: Option<u64> = None;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| -> Option<String> {
            if arg == flag {
                args.next()
            } else {
                arg.strip_prefix(flag)
                    .and_then(|rest| rest.strip_prefix('='))
                    .map(str::to_string)
            }
        };
        if let Some(v) = value_of("--threads") {
            if let Ok(v) = v.parse() {
                opts.threads = v;
            }
        } else if let Some(v) = value_of("--cache-dir") {
            opts.cache_dir = Some(v.into());
        } else if let Some(v) = value_of("--retries") {
            if let Ok(v) = v.parse() {
                opts.retries = v;
            }
        } else if let Some(v) = value_of("--fault-rate") {
            if let Ok(v) = v.parse() {
                fault_rate = Some(v);
            }
        } else if let Some(v) = value_of("--fault-seed") {
            if let Ok(v) = v.parse() {
                fault_seed = Some(v);
            }
        }
    }
    // Resolve the fault plan last: rate and seed flags may arrive in any
    // order and must compose with an environment-armed base plan.
    match fault_rate {
        Some(rate) if rate > 0.0 => {
            let seed = fault_seed
                .or(opts.fault.as_ref().map(|p| p.seed))
                .unwrap_or(0xFA17);
            opts = opts.faulty(FaultPlan::transient_only(seed, rate.min(1.0)));
        }
        Some(_) => {
            // An explicit zero/negative rate disarms faults entirely.
            opts.fault = None;
            opts.screen_outliers = false;
        }
        None => {
            if let (Some(seed), Some(plan)) = (fault_seed, opts.fault.as_mut()) {
                plan.seed = seed;
            }
        }
    }
    opts
}

fn report_collection(
    what: &str,
    nets: usize,
    gpus: usize,
    batches: &[usize],
    ds: &Dataset,
    report: &CollectReport,
    t: Instant,
) {
    eprintln!(
        "[collect] {what}: {nets} nets x {gpus} gpus x {batches:?}: {} kernel rows | {}",
        ds.kernels.len(),
        report.summary(t.elapsed().as_secs_f64())
    );
}

/// Collects a dataset with a progress + resilience/cache-stats line
/// (collection is the slow step), through the shared engine: work-stealing
/// parallelism across the whole `(gpu, network, batch)` grid, bounded
/// retries with backoff around every grid point and, when a cache
/// directory is configured, content-addressed memoization that skips
/// profiling entirely on warm reruns.
pub fn collect_verbose(nets: &[Network], gpus: &[GpuSpec], batches: &[usize]) -> Dataset {
    let t = Instant::now();
    let (ds, report) = collect_report_opts(nets, gpus, batches, &collect_options());
    report_collection(
        "inference",
        nets.len(),
        gpus.len(),
        batches,
        &ds,
        &report,
        t,
    );
    ds
}

/// [`collect_verbose`] for training-step measurements: same engine, same
/// parallelism, same cache (under a distinct cache key space).
pub fn collect_training_verbose(nets: &[Network], gpus: &[GpuSpec], batches: &[usize]) -> Dataset {
    let t = Instant::now();
    let (ds, report) = collect_training_report_opts(nets, gpus, batches, &collect_options());
    report_collection("training", nets.len(), gpus.len(), batches, &ds, &report, t);
    ds
}

/// The full 646-CNN zoo.
pub fn cnn_zoo() -> Vec<Network> {
    zoo::cnn_zoo()
}

/// The paper's training batch size.
pub fn train_batch() -> usize {
    TRAIN_BATCH
}

/// The canonical (train, test) split of a dataset.
pub fn standard_split(ds: &Dataset) -> (Dataset, Dataset) {
    split_dataset(ds, SPLIT_SEED)
}

/// The networks (from `pool`) whose names appear in `ds`.
pub fn networks_in(pool: &[Network], ds: &Dataset) -> Vec<Network> {
    let names: BTreeSet<String> = ds.network_names().into_iter().collect();
    pool.iter()
        .filter(|n| names.contains(n.name()))
        .cloned()
        .collect()
}

/// Looks up a Table 1 GPU.
///
/// # Panics
///
/// Panics on an unknown name (experiments only use Table 1 GPUs).
pub fn gpu(name: &str) -> GpuSpec {
    GpuSpec::by_name(name).unwrap_or_else(|| panic!("unknown GPU {name}"))
}

/// Measures one network on one GPU (ground truth via the profiler).
///
/// # Panics
///
/// Panics if the run does not fit in GPU memory; experiment configurations
/// are chosen to fit.
pub fn measure(gpu: &GpuSpec, net: &Network, batch: usize) -> f64 {
    Profiler::new(gpu.clone())
        .profile(net, batch)
        .unwrap_or_else(|e| panic!("measurement failed: {e}"))
        .e2e_seconds
}

/// Formats seconds as engineering-friendly milliseconds.
pub fn ms(seconds: f64) -> String {
    format!("{:.3} ms", seconds * 1e3)
}

/// Prints an S-curve (sorted predicted/measured ratios at the canonical
/// percentage points) plus the paper's average error metric.
pub fn print_s_curve(predicted: &[f64], measured: &[f64]) {
    let curve = dnnperf_linreg::ratio_curve(predicted, measured, &S_CURVE_PERCENTS);
    println!("{:>10} | {:>12}", "percent", "pred/meas");
    println!("{:->10}-+-{:->12}", "", "");
    for p in curve {
        println!("{:>9.0}% | {:>12.3}", p.percent, p.ratio);
    }
    let err = dnnperf_linreg::mean_abs_rel_error(predicted, measured);
    println!("average error: {:.3} ({:.1}%)", err, err * 100.0);
}

/// Case Study 1 support: trains an IGKW model on four diverse GPUs, then
/// sweeps the predicted time of `net` on a TITAN RTX with modified memory
/// bandwidth (200-1400 GB/s), printing the curve and the knee where the
/// marginal gain of another 100 GB/s drops below 5%.
pub fn bandwidth_sweep(net: &Network, batch: usize) {
    let train_gpus: Vec<GpuSpec> = ["A100", "A40", "GTX 1080 Ti", "V100"]
        .iter()
        .map(|n| gpu(n))
        .collect();
    let nets: Vec<_> = cnn_zoo().into_iter().step_by(3).collect();
    let ds = collect_verbose(&nets, &train_gpus, &[128]);
    let model = dnnperf_core::IgkwModel::train(&ds, &train_gpus).expect("train IGKW");

    let titan = gpu("TITAN RTX");
    let mut t = TextTable::new(&["bandwidth (GB/s)", "predicted time", "note"]);
    let mut curve = Vec::new();
    for bw in (200..=1400).step_by(100) {
        let g = titan.with_bandwidth(bw as f64);
        let pred = model.predict_network_on(net, batch, &g).expect("predict");
        curve.push((bw, pred));
        let note = if bw == 700 {
            "~ native TITAN RTX (672 GB/s)"
        } else {
            ""
        };
        t.row(&cells![bw, ms(pred), note]);
    }
    t.print();

    let knee = curve
        .windows(2)
        .find(|w| (w[0].1 - w[1].1) / w[1].1 < 0.05)
        .map(|w| w[0].0);
    match knee {
        Some(bw) => println!("\ndiminishing returns beyond ~{bw} GB/s"),
        None => println!("\nno knee found in the swept range"),
    }
}

/// A minimal fixed-width text table printer.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "table row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("{}", parts.join("  "));
        };
        line(&self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        println!("{}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Convenience macro: builds a fixed-size `[String; N]` row from display
/// values (borrow it to pass as `&[String]`).
#[macro_export]
macro_rules! cells {
    ($($v:expr),+ $(,)?) => {
        [$(format!("{}", $v)),+]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&cells!["1", "2"]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(&cells!["only one"]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(0.001), "1.000 ms");
    }

    #[test]
    fn gpu_lookup_works() {
        assert_eq!(gpu("A100").name, "A100");
    }

    #[test]
    fn cli_flags_override_collect_options() {
        let base = CollectOptions::serial();
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let o = collect_options_from(args(&["--threads", "7"]), base.clone());
        assert_eq!(o.threads, 7);
        let o = collect_options_from(args(&["--threads=3", "--cache-dir=/tmp/x"]), base.clone());
        assert_eq!(o.threads, 3);
        assert_eq!(o.cache_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        let o = collect_options_from(args(&["--cache-dir", "/tmp/y"]), base.clone());
        assert_eq!(o.cache_dir.as_deref(), Some(std::path::Path::new("/tmp/y")));
        // Unknown flags and malformed values leave the base untouched.
        let o = collect_options_from(args(&["--verbose", "--threads", "lots"]), base.clone());
        assert_eq!(o, base);
    }

    #[test]
    fn fault_flags_arm_and_disarm_plans() {
        let base = CollectOptions::serial();
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();

        // Rate alone arms a transient-only plan (default seed) and the
        // outlier screen.
        let o = collect_options_from(args(&["--fault-rate", "0.2"]), base.clone());
        let plan = o.fault.expect("plan armed");
        assert_eq!((plan.seed, plan.rate), (0xFA17, 0.2));
        assert!(plan.kinds.transient && !plan.kinds.panic);
        assert!(o.screen_outliers);

        // Seed + rate compose in either order.
        for v in [
            &["--fault-seed=9", "--fault-rate=0.5"][..],
            &["--fault-rate=0.5", "--fault-seed=9"][..],
        ] {
            let o = collect_options_from(args(v), base.clone());
            let plan = o.fault.expect("plan armed");
            assert_eq!((plan.seed, plan.rate), (9, 0.5));
        }

        // Seed alone re-seeds an environment-armed base plan.
        let armed = base.clone().faulty(FaultPlan::transient_only(1, 0.3));
        let o = collect_options_from(args(&["--fault-seed", "7"]), armed.clone());
        assert_eq!(o.fault.expect("still armed").seed, 7);

        // An explicit zero rate disarms it.
        let o = collect_options_from(args(&["--fault-rate", "0"]), armed);
        assert!(o.fault.is_none() && !o.screen_outliers);

        // Retries flag.
        let o = collect_options_from(args(&["--retries=5"]), base.clone());
        assert_eq!(o.retries, 5);

        // Rates above 1 clamp.
        let o = collect_options_from(args(&["--fault-rate", "3.0"]), base);
        assert_eq!(o.fault.expect("plan armed").rate, 1.0);
    }

    #[test]
    fn networks_in_filters_by_dataset() {
        let pool = vec![zoo::resnet::resnet18(), zoo::resnet::resnet34()];
        let ds = dnnperf_data::collect::collect(&pool[..1], &[gpu("A100")], &[8]);
        let filtered = networks_in(&pool, &ds);
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered[0].name(), "ResNet-18");
    }
}
