//! A std-only micro-benchmark timer replacing criterion.
//!
//! Each measurement runs `warmup` untimed iterations, then times `iters`
//! iterations individually with [`std::time::Instant`] and reports the
//! median, p10 and p90 per-iteration latency (robust summaries; means are
//! meaningless under scheduler noise). Results are printed as a
//! human-readable line *and* as one JSON object per line on stdout, so runs
//! can be diffed or collected by scripts without a harness dependency.
//!
//! Environment:
//!
//! * `DNNPERF_BENCH_ITERS` — overrides the timed iteration count of every
//!   measurement (e.g. `DNNPERF_BENCH_ITERS=3` for a CI smoke run);
//! * `DNNPERF_BENCH_JSON` — a file path; when set, JSON lines are also
//!   appended there.

use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

/// One benchmark measurement summary (per-iteration nanoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Measurement name (`group/function` by convention).
    pub name: String,
    /// Timed iterations contributing to the percentiles.
    pub iters: u32,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// 10th-percentile per-iteration time in nanoseconds.
    pub p10_ns: f64,
    /// 90th-percentile per-iteration time in nanoseconds.
    pub p90_ns: f64,
}

impl BenchResult {
    /// The result as one JSON object on a single line.
    pub fn json_line(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"iters\":{},\"median_ns\":{:.1},\"p10_ns\":{:.1},\"p90_ns\":{:.1}}}",
            self.name.replace('\\', "\\\\").replace('"', "\\\""),
            self.iters,
            self.median_ns,
            self.p10_ns,
            self.p90_ns
        )
    }
}

fn engineering(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Times `f` (`warmup` untimed + `iters` timed runs) and returns the
/// summary without printing. `DNNPERF_BENCH_ITERS` overrides `iters`.
///
/// # Panics
///
/// Panics if `iters` (after the env override) is zero.
pub fn measure<T>(name: &str, warmup: u32, iters: u32, mut f: impl FnMut() -> T) -> BenchResult {
    let iters = std::env::var("DNNPERF_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(iters);
    assert!(
        iters > 0,
        "benchmark {name}: need at least one timed iteration"
    );
    for _ in 0..warmup {
        black_box(f());
    }
    // No pre-sort: `dnnperf_linreg::percentile` selects each order
    // statistic on its own scratch copy (quickselect), so handing it the
    // raw sample order is both correct and cheaper than sorting here.
    let samples_ns: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_nanos() as f64
        })
        .collect();
    BenchResult {
        name: name.to_string(),
        iters,
        median_ns: dnnperf_linreg::percentile(&samples_ns, 50.0),
        p10_ns: dnnperf_linreg::percentile(&samples_ns, 10.0),
        p90_ns: dnnperf_linreg::percentile(&samples_ns, 90.0),
    }
}

/// [`measure`]s and reports: a human-readable line plus a JSON line on
/// stdout, and (when `DNNPERF_BENCH_JSON` is set) the JSON line appended to
/// that file.
pub fn bench<T>(name: &str, warmup: u32, iters: u32, f: impl FnMut() -> T) -> BenchResult {
    let r = measure(name, warmup, iters, f);
    println!(
        "{:<40} median {:>12}   p10 {:>12}   p90 {:>12}   ({} iters)",
        r.name,
        engineering(r.median_ns),
        engineering(r.p10_ns),
        engineering(r.p90_ns),
        r.iters
    );
    println!("{}", r.json_line());
    if let Ok(path) = std::env::var("DNNPERF_BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(file, "{}", r.json_line());
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_ordered_percentiles() {
        let mut n = 0u64;
        let r = measure("timer::spin", 2, 16, || {
            n = n.wrapping_add(1);
            std::hint::black_box((0..100u64).sum::<u64>())
        });
        assert!(n >= 18, "warmup + timed iterations must all run");
        assert!(r.p10_ns <= r.median_ns && r.median_ns <= r.p90_ns);
        assert!(r.median_ns >= 0.0);
    }

    #[test]
    fn json_line_is_wellformed_and_escaped() {
        let r = BenchResult {
            name: "a\"b".into(),
            iters: 4,
            median_ns: 1.5,
            p10_ns: 1.0,
            p90_ns: 2.0,
        };
        let j = r.json_line();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\\\""));
        assert!(j.contains("\"iters\":4"));
    }

    #[test]
    fn engineering_units() {
        assert_eq!(engineering(500.0), "500 ns");
        assert_eq!(engineering(1500.0), "1.50 us");
        assert_eq!(engineering(2.5e6), "2.50 ms");
        assert_eq!(engineering(3.2e9), "3.20 s");
    }
}
