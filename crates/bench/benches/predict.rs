//! Prediction and training latency of the performance models.
//!
//! The paper's pitch is that predictions cost microseconds; this bench pins
//! that down per model, plus the one-off training cost.

use criterion::{criterion_group, criterion_main, Criterion};
use dnnperf_core::{E2eModel, IgkwModel, KwModel, LwModel, Predictor};
use dnnperf_data::collect::collect;
use dnnperf_data::Dataset;
use dnnperf_gpu::GpuSpec;
use std::hint::black_box;

fn training_dataset() -> Dataset {
    let nets: Vec<_> = dnnperf_dnn::zoo::cnn_zoo().into_iter().step_by(10).collect();
    let gpus = [
        GpuSpec::by_name("A100").unwrap(),
        GpuSpec::by_name("A40").unwrap(),
        GpuSpec::by_name("GTX 1080 Ti").unwrap(),
    ];
    collect(&nets, &gpus, &[128])
}

fn bench_predict(c: &mut Criterion) {
    let ds = training_dataset();
    let net = dnnperf_dnn::zoo::resnet::resnet50();
    let e2e = E2eModel::train(&ds, "A100").unwrap();
    let lw = LwModel::train(&ds, "A100").unwrap();
    let kw = KwModel::train(&ds, "A100").unwrap();
    let gpus: Vec<GpuSpec> = ["A100", "A40", "GTX 1080 Ti"]
        .iter()
        .map(|n| GpuSpec::by_name(n).unwrap())
        .collect();
    let igkw = IgkwModel::train(&ds, &gpus).unwrap();
    let titan = GpuSpec::by_name("TITAN RTX").unwrap();

    let mut g = c.benchmark_group("predict_resnet50");
    g.bench_function("e2e", |b| {
        b.iter(|| e2e.predict_network(black_box(&net), 256).unwrap())
    });
    g.bench_function("lw", |b| {
        b.iter(|| lw.predict_network(black_box(&net), 256).unwrap())
    });
    g.bench_function("kw", |b| {
        b.iter(|| kw.predict_network(black_box(&net), 256).unwrap())
    });
    g.bench_function("igkw_unseen_gpu", |b| {
        b.iter(|| igkw.predict_network_on(black_box(&net), 256, &titan).unwrap())
    });
    g.finish();
}

fn bench_train(c: &mut Criterion) {
    let ds = training_dataset();
    let mut g = c.benchmark_group("train");
    g.sample_size(10);
    g.bench_function("e2e", |b| b.iter(|| E2eModel::train(black_box(&ds), "A100").unwrap()));
    g.bench_function("lw", |b| b.iter(|| LwModel::train(black_box(&ds), "A100").unwrap()));
    g.bench_function("kw", |b| b.iter(|| KwModel::train(black_box(&ds), "A100").unwrap()));
    g.finish();
}

criterion_group!(benches, bench_predict, bench_train);
criterion_main!(benches);
