//! Prediction and training latency of the performance models.
//!
//! The paper's pitch is that predictions cost microseconds; this bench pins
//! that down per model, plus the one-off training cost. Runs under the
//! std-only [`dnnperf_bench::timer`] (no external harness).

use dnnperf_bench::timer::bench;
use dnnperf_core::{E2eModel, IgkwModel, KwModel, LwModel, Predictor};
use dnnperf_data::collect::collect;
use dnnperf_data::Dataset;
use dnnperf_gpu::GpuSpec;
use std::hint::black_box;

fn training_dataset() -> Dataset {
    let nets: Vec<_> = dnnperf_dnn::zoo::cnn_zoo()
        .into_iter()
        .step_by(10)
        .collect();
    let gpus = [
        GpuSpec::by_name("A100").unwrap(),
        GpuSpec::by_name("A40").unwrap(),
        GpuSpec::by_name("GTX 1080 Ti").unwrap(),
    ];
    collect(&nets, &gpus, &[128])
}

fn main() {
    let ds = training_dataset();
    let net = dnnperf_dnn::zoo::resnet::resnet50();
    let e2e = E2eModel::train(&ds, "A100").unwrap();
    let lw = LwModel::train(&ds, "A100").unwrap();
    let kw = KwModel::train(&ds, "A100").unwrap();
    let gpus: Vec<GpuSpec> = ["A100", "A40", "GTX 1080 Ti"]
        .iter()
        .map(|n| GpuSpec::by_name(n).unwrap())
        .collect();
    let igkw = IgkwModel::train(&ds, &gpus).unwrap();
    let titan = GpuSpec::by_name("TITAN RTX").unwrap();

    bench("predict_resnet50/e2e", 10, 100, || {
        e2e.predict_network(black_box(&net), 256).unwrap()
    });
    bench("predict_resnet50/lw", 10, 100, || {
        lw.predict_network(black_box(&net), 256).unwrap()
    });
    bench("predict_resnet50/kw", 10, 100, || {
        kw.predict_network(black_box(&net), 256).unwrap()
    });
    bench("predict_resnet50/igkw_unseen_gpu", 10, 100, || {
        igkw.predict_network_on(black_box(&net), 256, &titan)
            .unwrap()
    });

    bench("train/e2e", 2, 10, || {
        E2eModel::train(black_box(&ds), "A100").unwrap()
    });
    bench("train/lw", 2, 10, || {
        LwModel::train(black_box(&ds), "A100").unwrap()
    });
    bench("train/kw", 2, 10, || {
        KwModel::train(black_box(&ds), "A100").unwrap()
    });
}
