//! Measurement-substrate throughput: kernel dispatch, profiling, and
//! dataset row conversion. These bound how fast the paper's 240k-kernel
//! dataset can be (re)generated.

use criterion::{criterion_group, criterion_main, Criterion};
use dnnperf_data::collect::{collect, trace_rows};
use dnnperf_gpu::dispatch::dispatch_network;
use dnnperf_gpu::{GpuSpec, Profiler};
use std::hint::black_box;

fn bench_substrate(c: &mut Criterion) {
    let a100 = GpuSpec::by_name("A100").unwrap();
    let net = dnnperf_dnn::zoo::resnet::resnet50();
    let prof = Profiler::new(a100.clone());

    c.bench_function("dispatch_resnet50", |b| {
        b.iter(|| dispatch_network(black_box(&net), 64))
    });
    c.bench_function("profile_resnet50", |b| {
        b.iter(|| prof.profile(black_box(&net), 64).unwrap())
    });
    let trace = prof.profile(&net, 64).unwrap();
    c.bench_function("trace_to_rows_resnet50", |b| {
        b.iter(|| trace_rows(black_box(&trace), &net))
    });

    let nets = [
        dnnperf_dnn::zoo::resnet::resnet18(),
        dnnperf_dnn::zoo::vgg::vgg11(),
        dnnperf_dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0),
    ];
    let mut g = c.benchmark_group("collect");
    g.sample_size(20);
    g.bench_function("three_nets_one_gpu", |b| {
        b.iter(|| collect(black_box(&nets), std::slice::from_ref(&a100), &[64]))
    });
    g.finish();

    c.bench_function("build_cnn_zoo_646", |bch| bch.iter(dnnperf_dnn::zoo::cnn_zoo));
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
