//! Measurement-substrate throughput: kernel dispatch, profiling, and
//! dataset row conversion. These bound how fast the paper's 240k-kernel
//! dataset can be (re)generated. Runs under the std-only
//! [`dnnperf_bench::timer`].

use dnnperf_bench::timer::bench;
use dnnperf_data::collect::{collect, trace_rows};
use dnnperf_gpu::dispatch::dispatch_network;
use dnnperf_gpu::{GpuSpec, Profiler};
use std::hint::black_box;

fn main() {
    let a100 = GpuSpec::by_name("A100").unwrap();
    let net = dnnperf_dnn::zoo::resnet::resnet50();
    let prof = Profiler::new(a100.clone());

    bench("dispatch_resnet50", 5, 50, || {
        dispatch_network(black_box(&net), 64)
    });
    bench("profile_resnet50", 5, 50, || {
        prof.profile(black_box(&net), 64).unwrap()
    });
    let trace = prof.profile(&net, 64).unwrap();
    bench("trace_to_rows_resnet50", 5, 50, || {
        trace_rows(black_box(&trace), &net)
    });

    let nets = [
        dnnperf_dnn::zoo::resnet::resnet18(),
        dnnperf_dnn::zoo::vgg::vgg11(),
        dnnperf_dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0),
    ];
    bench("collect/three_nets_one_gpu", 3, 20, || {
        collect(black_box(&nets), std::slice::from_ref(&a100), &[64])
    });

    bench("build_cnn_zoo_646", 2, 10, dnnperf_dnn::zoo::cnn_zoo);
}
