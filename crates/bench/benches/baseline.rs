//! The speed axis of Table 2: the KW model against the cycle-approximate
//! simulator and its PKS/PKA sampled variants, all predicting ResNet-50 on
//! V100. Runs under the std-only [`dnnperf_bench::timer`].

use dnnperf_baseline::{pka_estimate, pks_estimate, CycleSim};
use dnnperf_bench::timer::bench;
use dnnperf_core::{KwModel, Predictor};
use dnnperf_data::collect::collect;
use dnnperf_gpu::GpuSpec;
use std::hint::black_box;

fn main() {
    let v100 = GpuSpec::by_name("V100").unwrap();
    let net = dnnperf_dnn::zoo::resnet::resnet50();
    let batch = 64;

    let train_nets: Vec<_> = dnnperf_dnn::zoo::cnn_zoo()
        .into_iter()
        .filter(|n| n.name() != net.name())
        .step_by(10)
        .collect();
    let ds = collect(&train_nets, std::slice::from_ref(&v100), &[64]);
    let kw = KwModel::train(&ds, "V100").unwrap();
    let sim = CycleSim::new(v100);

    bench("table2_resnet50_v100/kw_predict", 2, 10, || {
        kw.predict_network(black_box(&net), batch).unwrap()
    });
    bench("table2_resnet50_v100/pka", 2, 10, || {
        pka_estimate(&sim, black_box(&net), batch)
    });
    bench("table2_resnet50_v100/pks", 2, 10, || {
        pks_estimate(&sim, black_box(&net), batch, 3)
    });
    bench("table2_resnet50_v100/full_simulation", 2, 10, || {
        sim.simulate_network(black_box(&net), batch)
    });
}
