//! The speed axis of Table 2: the KW model against the cycle-approximate
//! simulator and its PKS/PKA sampled variants, all predicting ResNet-50 on
//! V100.

use criterion::{criterion_group, criterion_main, Criterion};
use dnnperf_baseline::{pka_estimate, pks_estimate, CycleSim};
use dnnperf_core::{KwModel, Predictor};
use dnnperf_data::collect::collect;
use dnnperf_gpu::GpuSpec;
use std::hint::black_box;

fn bench_table2_speed(c: &mut Criterion) {
    let v100 = GpuSpec::by_name("V100").unwrap();
    let net = dnnperf_dnn::zoo::resnet::resnet50();
    let batch = 64;

    let train_nets: Vec<_> = dnnperf_dnn::zoo::cnn_zoo()
        .into_iter()
        .filter(|n| n.name() != net.name())
        .step_by(10)
        .collect();
    let ds = collect(&train_nets, std::slice::from_ref(&v100), &[64]);
    let kw = KwModel::train(&ds, "V100").unwrap();
    let sim = CycleSim::new(v100);

    let mut g = c.benchmark_group("table2_resnet50_v100");
    g.sample_size(10);
    g.bench_function("kw_predict", |b| {
        b.iter(|| kw.predict_network(black_box(&net), batch).unwrap())
    });
    g.bench_function("pka", |b| b.iter(|| pka_estimate(&sim, black_box(&net), batch)));
    g.bench_function("pks", |b| b.iter(|| pks_estimate(&sim, black_box(&net), batch, 3)));
    g.bench_function("full_simulation", |b| {
        b.iter(|| sim.simulate_network(black_box(&net), batch))
    });
    g.finish();
}

criterion_group!(benches, bench_table2_speed);
criterion_main!(benches);
