//! Concurrency conformance for the shared plan cache: many threads
//! hammering one cache — hits, misses, evictions and mid-flight
//! invalidation — must stay deterministic per request, never deadlock,
//! and never compile a key more than once per residency.

use dnnperf_core::plan::CompiledPlan;
use dnnperf_core::Workflow;
use dnnperf_data::collect::collect;
use dnnperf_dnn::{zoo, Network};
use dnnperf_gpu::GpuSpec;
use dnnperf_serve::{CacheConfig, SharedPlanCache};
use std::sync::Arc;

fn nets() -> Vec<Network> {
    vec![
        zoo::mobilenet::mobilenet_v2(0.25, 1.0),
        zoo::mobilenet::mobilenet_v2(0.5, 1.5),
        zoo::squeezenet::squeezenet(64, 32, 0.125),
        zoo::squeezenet::squeezenet(128, 128, 0.25),
    ]
}

fn train(gpu: &str) -> Arc<Workflow> {
    let spec = GpuSpec::by_name(gpu).unwrap();
    let ds = collect(&nets(), &[spec], &[1, 8]);
    Arc::new(Workflow::train(&ds, gpu).unwrap())
}

const BATCHES: [usize; 3] = [1, 8, 32];

/// Every thread's every prediction must bit-match a direct compile
/// against the suite it used, whatever the interleaving.
#[test]
fn hammered_cache_stays_deterministic_and_compiles_each_key_once() {
    let suite = train("A100");
    let nets = nets();
    let cache = SharedPlanCache::new(&CacheConfig {
        shards: 4,
        budget_bytes: 32 << 20, // ample: nothing should evict
    });

    // Direct-path oracle, computed up front.
    let mut oracle = Vec::new();
    for net in &nets {
        for &batch in &BATCHES {
            oracle.push(suite.predict(net, batch).unwrap().to_bits());
        }
    }

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..16usize {
            let suite = &suite;
            let nets = &nets;
            let cache = &cache;
            let oracle = &oracle;
            handles.push(s.spawn(move || {
                for i in 0..40usize {
                    let ni = (t * 7 + i) % nets.len();
                    let bi = (t + i) % BATCHES.len();
                    let net = &nets[ni];
                    let plan = cache.get_or_compile(suite, net, BATCHES[bi]).unwrap();
                    assert_eq!(
                        plan.predict().to_bits(),
                        oracle[ni * BATCHES.len() + bi],
                        "thread {t} iter {i}"
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });

    let stats = cache.stats();
    let distinct = nets.len() * BATCHES.len();
    assert_eq!(
        stats.compiles as usize, distinct,
        "each key must compile exactly once: {stats:?}"
    );
    assert_eq!(stats.evictions, 0, "budget was ample: {stats:?}");
    assert_eq!(stats.entries, distinct);
    assert_eq!(
        stats.hits + stats.misses,
        16 * 40,
        "every request is a hit or a miss: {stats:?}"
    );
}

/// Under a tight budget the measured size never exceeds it, eviction
/// happens, and every served prediction is still exact.
#[test]
fn tight_budget_evicts_but_never_overflows_or_corrupts() {
    let suite = train("A100");
    let nets = nets();

    // Budget sized to hold only a few plans: measure one plan first.
    let probe = CompiledPlan::compile(&suite, &nets[0], 1).unwrap();
    let one = probe.approx_bytes();
    let budget = one * 3;
    let cache = SharedPlanCache::new(&CacheConfig {
        shards: 1, // one shard so the budget bites hard
        budget_bytes: budget,
    });

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..8usize {
            let suite = &suite;
            let nets = &nets;
            let cache = &cache;
            handles.push(s.spawn(move || {
                for i in 0..30usize {
                    let net = &nets[(t + i) % nets.len()];
                    let batch = BATCHES[(t * 3 + i) % BATCHES.len()];
                    let plan = cache.get_or_compile(suite, net, batch).unwrap();
                    let direct = suite.predict(net, batch).unwrap();
                    assert_eq!(plan.predict().to_bits(), direct.to_bits());
                    // The budget invariant must hold at every instant we
                    // can observe it, not just at the end.
                    assert!(
                        cache.bytes() <= cache.budget_bytes(),
                        "cache {} bytes over budget {}",
                        cache.bytes(),
                        cache.budget_bytes()
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });

    let stats = cache.stats();
    assert!(stats.evictions > 0, "tight budget must evict: {stats:?}");
    assert!(stats.bytes <= budget, "{} > {budget}", stats.bytes);
}

/// Swapping suites (a retrain) mid-hammer: requests pin their suite, so
/// each one is served by exactly the generation it asked for, and the
/// retired generation can be purged without disturbing the new one.
#[test]
fn mid_flight_invalidation_keeps_requests_deterministic() {
    let suite_a = train("A100");
    let suite_b = train("V100");
    let nets = nets();
    let cache = Arc::new(SharedPlanCache::new(&CacheConfig {
        shards: 4,
        budget_bytes: 32 << 20,
    }));

    assert_ne!(suite_a.generation(), suite_b.generation());

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..12usize {
            let suite_a = &suite_a;
            let suite_b = &suite_b;
            let nets = &nets;
            let cache = &cache;
            handles.push(s.spawn(move || {
                for i in 0..30usize {
                    // Threads alternate suites; a purge races underneath.
                    // Indices are decorrelated so every (suite, net,
                    // batch) combo is exercised by every thread.
                    let suite = if i % 2 == 0 { suite_a } else { suite_b };
                    let net = &nets[(t + i / 2) % nets.len()];
                    let batch = BATCHES[(t + i) % BATCHES.len()];
                    let plan = cache.get_or_compile(suite, net, batch).unwrap();
                    assert_eq!(plan.suite_generation(), suite.generation());
                    let direct = suite.predict(net, batch).unwrap();
                    assert_eq!(plan.predict().to_bits(), direct.to_bits());
                }
            }));
        }
        // The invalidator: repeatedly purge suite A's generation while
        // the hammer runs.
        {
            let cache = &cache;
            let suite_a = &suite_a;
            handles.push(s.spawn(move || {
                for _ in 0..20 {
                    cache.purge_generation(suite_a.generation());
                    std::thread::yield_now();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });

    // After a final purge only suite B's generation remains resident.
    cache.purge_generation(suite_a.generation());
    let remaining = cache.len();
    assert!(remaining <= nets.len() * BATCHES.len());
    // Requests against B still hit without recompiling.
    let misses_before = cache.stats().misses;
    for net in &nets {
        let plan = cache.get_or_compile(&suite_b, net, 8).unwrap();
        assert_eq!(plan.suite_generation(), suite_b.generation());
    }
    assert_eq!(cache.stats().misses, misses_before);
}

/// The fleet-simulator oracle path: a `PredictionOracle` whose
/// `PlanSource` is the shared serving cache, soaked with 10k seeded
/// randomized ops (lookups interleaved with generation purges under a
/// tight budget). The never-over-budget invariant must hold at every
/// observable instant and every oracle answer must bit-match the suite's
/// own graceful prediction, notes included.
#[test]
fn oracle_over_shared_cache_soaks_through_purges_within_budget() {
    use dnnperf_core::{OracleSource, PredictionOracle};

    let suite_a = train("A100");
    let suite_b = train("V100");
    let nets = nets();

    // Budget tight enough that the soak's working set cannot all stay
    // resident — purges and evictions both reshape the cache mid-run.
    let probe = CompiledPlan::compile(&suite_a, &nets[0], 1).unwrap();
    let budget = probe.approx_bytes() * 4;
    let cache = Arc::new(SharedPlanCache::new(&CacheConfig {
        shards: 2,
        budget_bytes: budget,
    }));

    let mut oracle = PredictionOracle::with_plan_source(cache.clone());
    oracle.add_suite(Arc::clone(&suite_a));
    oracle.add_suite(Arc::clone(&suite_b));
    let oracle = &oracle;

    // Expected answers, computed through each suite's private cache so
    // disagreement can only come from the shared-cache path.
    let gpus = [
        GpuSpec::by_name("A100").unwrap(),
        GpuSpec::by_name("V100").unwrap(),
    ];
    let suites = [&suite_a, &suite_b];
    let mut want = Vec::new();
    for suite in suites {
        for net in &nets {
            for &batch in &BATCHES {
                want.push(suite.predict_graceful(net, batch).unwrap());
            }
        }
    }
    let want = &want;

    const OPS: usize = 10_000;
    const THREADS: usize = 8;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let cache = &cache;
            let gpus = &gpus;
            let nets = &nets;
            handles.push(s.spawn(move || {
                let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ ((t as u64) << 21);
                let mut lcg = move || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 33) as usize
                };
                for op in 0..OPS / THREADS {
                    let gi = lcg() % gpus.len();
                    let ni = lcg() % nets.len();
                    let bi = lcg() % BATCHES.len();
                    if lcg() % 16 == 0 {
                        // A retrain-style purge races the lookups.
                        cache.purge_generation(suites[gi].generation());
                    }
                    let got = oracle.predict(&gpus[gi], &nets[ni], BATCHES[bi]).unwrap();
                    let expect = &want[(gi * nets.len() + ni) * BATCHES.len() + bi];
                    assert_eq!(
                        got.seconds.to_bits(),
                        expect.seconds.to_bits(),
                        "thread {t} op {op}"
                    );
                    assert_eq!(got.notes, expect.notes);
                    assert_eq!(got.source, OracleSource::CompiledPlan);
                    assert!(
                        cache.bytes() <= cache.budget_bytes(),
                        "cache {} bytes over budget {} at thread {t} op {op}",
                        cache.bytes(),
                        cache.budget_bytes()
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });

    let stats = cache.stats();
    assert!(stats.bytes <= budget, "{} > {budget}", stats.bytes);
    assert_eq!(stats.hits + stats.misses, OPS as u64);
    assert!(
        stats.misses > 0 && stats.hits > 0,
        "soak should see both cold and warm paths: {stats:?}"
    );
}
