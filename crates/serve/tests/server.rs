//! End-to-end contracts of the prediction server: bit-equality with
//! direct suite calls, staleness-free suite swaps, structured load
//! shedding, and the TCP front door.

use dnnperf_core::Workflow;
use dnnperf_data::collect::collect;
use dnnperf_dnn::{zoo, Network};
use dnnperf_gpu::GpuSpec;
use dnnperf_serve::{
    CacheConfig, Client, PredictionServer, Request, Response, ServeError, ServerConfig, TcpServer,
};
use std::sync::Arc;

fn small_nets() -> Vec<Network> {
    vec![
        zoo::mobilenet::mobilenet_v2(0.25, 1.0),
        zoo::mobilenet::mobilenet_v2(0.5, 1.5),
        zoo::squeezenet::squeezenet(64, 32, 0.125),
        zoo::squeezenet::squeezenet(128, 128, 0.25),
    ]
}

fn train_suite(gpu: &str) -> Arc<Workflow> {
    let gpu_spec = GpuSpec::by_name(gpu).unwrap();
    let ds = collect(&small_nets(), &[gpu_spec], &[1, 8]);
    Arc::new(Workflow::train(&ds, gpu).unwrap())
}

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_depth: 64,
        max_batch: 8,
        cache: CacheConfig {
            shards: 4,
            budget_bytes: 8 << 20,
        },
        panic_plan: None,
    }
}

#[test]
fn served_predictions_are_bit_identical_to_direct_calls() {
    let suite = train_suite("A100");
    let server = PredictionServer::start(&test_config());
    server.register_tenant("team-a", Arc::clone(&suite));
    server.add_networks(small_nets());

    for net in &small_nets() {
        for batch in [1usize, 8, 32] {
            let direct = suite.predict(net, batch).unwrap();
            let served = server.predict("team-a", net.name(), batch).unwrap();
            assert_eq!(
                served.to_bits(),
                direct.to_bits(),
                "{} batch {batch}",
                net.name()
            );

            let direct_g = suite.predict_graceful(net, batch).unwrap();
            let served_g = server
                .predict_graceful("team-a", net.name(), batch)
                .unwrap();
            assert_eq!(served_g.seconds.to_bits(), direct_g.seconds.to_bits());
            assert_eq!(served_g.notes.len(), direct_g.notes.len());
        }
    }

    // The second sweep of the same requests must be all cache hits.
    let before = server.stats();
    for net in &small_nets() {
        let _ = server.predict("team-a", net.name(), 8).unwrap();
    }
    let after = server.stats();
    assert_eq!(after.cache.misses, before.cache.misses, "no new compiles");
    assert!(after.cache.hits > before.cache.hits);
    server.shutdown();
}

#[test]
fn suite_swap_serves_the_new_models_immediately() {
    let old_suite = train_suite("A100");
    let new_suite = train_suite("V100");
    let net = zoo::mobilenet::mobilenet_v2(0.25, 1.0);

    let server = PredictionServer::start(&test_config());
    server.register_tenant("tenant", Arc::clone(&old_suite));
    server.add_networks(small_nets());

    let before = server.predict("tenant", net.name(), 8).unwrap();
    assert_eq!(
        before.to_bits(),
        old_suite.predict(&net, 8).unwrap().to_bits()
    );

    // Retrain: swap the suite. The old generation's plans are purged and
    // the very next request is served by the new models.
    let purged = server.update_suite("tenant", Arc::clone(&new_suite));
    assert!(purged > 0, "old generation should have resident plans");

    let after = server.predict("tenant", net.name(), 8).unwrap();
    assert_eq!(
        after.to_bits(),
        new_suite.predict(&net, 8).unwrap().to_bits()
    );
    assert_ne!(
        after.to_bits(),
        before.to_bits(),
        "suites trained on different GPUs must serve different times"
    );
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_overloaded_and_shutdown_answers_the_rest() {
    let suite = train_suite("A100");
    let server = PredictionServer::start(&ServerConfig {
        workers: 0, // nothing drains the queue: admitted requests park
        queue_depth: 2,
        max_batch: 4,
        cache: CacheConfig::default(),
        panic_plan: None,
    });
    server.register_tenant("t", suite);
    server.add_networks(small_nets());
    let net = small_nets().remove(0);

    let p1 = server.submit("t", net.name(), 1).unwrap();
    let p2 = server.submit("t", net.name(), 2).unwrap();
    assert_eq!(
        server.submit("t", net.name(), 4).unwrap_err(),
        ServeError::Overloaded
    );
    assert_eq!(server.stats().shed, 1);

    // Shutdown answers the parked requests instead of hanging them.
    server.shutdown();
    assert_eq!(p1.wait().unwrap_err(), ServeError::ShuttingDown);
    assert_eq!(p2.wait().unwrap_err(), ServeError::ShuttingDown);
    assert_eq!(
        server.submit("t", net.name(), 1).unwrap_err(),
        ServeError::ShuttingDown
    );
}

#[test]
fn unknown_names_fail_before_admission() {
    let server = PredictionServer::start(&test_config());
    server.register_tenant("t", train_suite("A100"));
    server.add_networks(small_nets());
    let net = small_nets().remove(0);
    assert!(matches!(
        server.predict("ghost", net.name(), 1),
        Err(ServeError::UnknownTenant(_))
    ));
    assert!(matches!(
        server.predict("t", "no-such-net", 1),
        Err(ServeError::UnknownNetwork(_))
    ));
    assert_eq!(server.stats().admitted, 0);
    server.shutdown();
}

#[test]
fn tcp_round_trip_is_bit_exact_for_many_concurrent_clients() {
    let suite = train_suite("A100");
    let server = Arc::new(PredictionServer::start(&test_config()));
    server.register_tenant("team", Arc::clone(&suite));
    server.add_networks(small_nets());
    let tcp = TcpServer::serve(Arc::clone(&server), "127.0.0.1:0").unwrap();
    let addr = tcp.addr();

    let nets = small_nets();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for client_id in 0..8usize {
            let nets = &nets;
            let suite = &suite;
            handles.push(s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..6usize {
                    let net = &nets[(client_id + i) % nets.len()];
                    let batch = [1usize, 8, 32][(client_id + i) % 3];
                    let served = client.predict("team", net.name(), batch).unwrap();
                    let direct = suite.predict(net, batch).unwrap();
                    assert_eq!(served.to_bits(), direct.to_bits());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });

    let mut client = Client::connect(addr).unwrap();

    // Graceful over the wire carries the note count.
    let resp = client
        .call(&Request::Graceful {
            tenant: "team".into(),
            network: nets[0].name().into(),
            batch: 8,
            deadline_ms: None,
        })
        .unwrap();
    let direct = suite.predict_graceful(&nets[0], 8).unwrap();
    match resp {
        Response::Ok {
            seconds,
            degraded_notes,
        } => {
            assert_eq!(seconds.to_bits(), direct.seconds.to_bits());
            assert_eq!(degraded_notes, Some(direct.notes.len()));
        }
        other => panic!("unexpected response {other:?}"),
    }

    // Bad requests come back as structured errors, not dropped sockets.
    let resp = client
        .call(&Request::Predict {
            tenant: "team".into(),
            network: "no-such-net".into(),
            batch: 1,
            deadline_ms: None,
        })
        .unwrap();
    assert!(matches!(resp, Response::Error(_)));

    // Stats round-trip and count the traffic we generated.
    match client.call(&Request::Stats).unwrap() {
        Response::Stats(pairs) => {
            let completed = pairs
                .iter()
                .find(|(k, _)| k == "completed")
                .map(|(_, v)| *v)
                .unwrap();
            assert!(completed >= 48, "8 clients x 6 requests, got {completed}");
        }
        other => panic!("unexpected response {other:?}"),
    }

    // Clean, idempotent shutdown.
    tcp.shutdown();
    tcp.shutdown();
    server.shutdown();
}
