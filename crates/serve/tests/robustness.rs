//! Chaos contracts of the serving layer: every submitted request gets
//! exactly one terminal answer — under deadlines, worker panics,
//! mid-flight shutdown, and injected transport faults.

use dnnperf_core::Workflow;
use dnnperf_data::collect::collect;
use dnnperf_dnn::{zoo, Network};
use dnnperf_gpu::GpuSpec;
use dnnperf_sched::{RecordingClock, RetryPolicy};
use dnnperf_serve::{
    read_frame, write_frame, CacheConfig, Client, FaultyTransport, PanicPlan, PredictionServer,
    Request, Response, ServeError, ServerConfig, TcpConfig, TcpServer, TransportFaultKinds,
    TransportFaultPlan, WireError,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn small_nets() -> Vec<Network> {
    vec![
        zoo::mobilenet::mobilenet_v2(0.25, 1.0),
        zoo::squeezenet::squeezenet(64, 32, 0.125),
    ]
}

fn train_suite() -> Arc<Workflow> {
    let gpu_spec = GpuSpec::by_name("A100").unwrap();
    let ds = collect(&small_nets(), &[gpu_spec], &[1, 8]);
    Arc::new(Workflow::train(&ds, "A100").unwrap())
}

fn config(workers: usize, queue_depth: usize) -> ServerConfig {
    ServerConfig {
        workers,
        queue_depth,
        max_batch: 4,
        cache: CacheConfig {
            shards: 4,
            budget_bytes: 8 << 20,
        },
        panic_plan: None,
    }
}

#[test]
fn zero_deadline_is_shed_at_submission() {
    let server = PredictionServer::start(&config(2, 16));
    server.register_tenant("t", train_suite());
    server.add_networks(small_nets());
    let net = small_nets().remove(0);

    assert_eq!(
        server.submit_deadline("t", net.name(), 1, 0).unwrap_err(),
        ServeError::DeadlineExceeded
    );
    let s = server.stats();
    assert_eq!(s.shed_deadline, 1);
    assert_eq!(s.admitted, 0, "shed requests consume no admission slot");

    // A generous deadline still serves normally.
    let ok = server.predict_deadline("t", net.name(), 1, 60_000).unwrap();
    assert!(ok.is_finite() && ok > 0.0);
    server.shutdown();
}

#[test]
fn expired_queue_entries_are_swept_before_shedding_fresh_work() {
    // Zero workers: admitted requests park in the queue, so expiry is
    // fully controlled by the fake clock.
    let clock = Arc::new(RecordingClock::new());
    let server = PredictionServer::start_with_clock(&config(0, 2), Arc::clone(&clock) as _);
    server.register_tenant("t", train_suite());
    server.add_networks(small_nets());
    let net = small_nets().remove(0);

    let p1 = server.submit_deadline("t", net.name(), 1, 50).unwrap();
    let p2 = server.submit_deadline("t", net.name(), 8, 50).unwrap();
    // Queue full; everything in it is still live, so fresh work sheds.
    assert_eq!(
        server.submit("t", net.name(), 1).unwrap_err(),
        ServeError::Overloaded
    );

    // Let both deadlines lapse. The next submission finds the queue
    // full, sweeps the corpses (answering their waiters), and lands.
    clock.advance(Duration::from_millis(100));
    let p3 = server.submit("t", net.name(), 1).unwrap();

    assert_eq!(p1.wait().unwrap_err(), ServeError::DeadlineExceeded);
    assert_eq!(p2.wait().unwrap_err(), ServeError::DeadlineExceeded);
    let s = server.stats();
    assert_eq!(s.expired, 2);
    assert_eq!(s.admitted, 3);
    assert_eq!(s.shed, 1);

    server.shutdown();
    assert_eq!(p3.wait().unwrap_err(), ServeError::ShuttingDown);
}

#[test]
fn panicking_workers_answer_waiters_and_respawn() {
    // Half the admission sequence numbers fire an injected panic; the
    // plan is pure, so the test can predict each request's fate.
    let plan = PanicPlan::new(0xC4A05, 0.5);
    let mut cfg = config(2, 32);
    cfg.panic_plan = Some(plan.clone());
    let server = PredictionServer::start(&cfg);
    server.register_tenant("t", train_suite());
    server.add_networks(small_nets());
    let nets = small_nets();

    let total = 40u64;
    let mut fired = 0u64;
    for seq in 0..total {
        let net = &nets[(seq as usize) % nets.len()];
        let out = server.predict("t", net.name(), 1 + (seq as usize % 8));
        if plan.fires(seq) {
            fired += 1;
            assert!(
                matches!(out, Err(ServeError::Internal(_))),
                "seq {seq} should have been answered Internal, got {out:?}"
            );
        } else {
            assert!(out.is_ok(), "seq {seq} should succeed, got {out:?}");
        }
    }
    assert!(fired > 0, "seed must fire at least once for this test");

    let s = server.stats();
    assert_eq!(s.panicked, fired);
    assert_eq!(s.respawns, fired, "every panic respawned a worker");
    assert_eq!(s.completed, total - fired);
    // The pool never shrinks: initial workers + one handle per respawn.
    assert_eq!(server.worker_handles() as u64, 2 + fired);

    // And the pool is still alive after the storm: drive requests until
    // one draws a non-firing seq (rate 0.5 ⇒ a run of 16 firing seqs is
    // astronomically unlikely, and the plan is deterministic anyway).
    let net = &nets[0];
    let alive = (0..16).any(|_| server.predict("t", net.name(), 2).is_ok());
    assert!(alive, "pool must keep serving after panics");

    server.shutdown();
    assert_eq!(server.worker_handles(), 0, "shutdown joins every worker");
}

#[test]
fn shutdown_under_load_answers_every_request() {
    let server = Arc::new(PredictionServer::start(&config(2, 8)));
    server.register_tenant("t", train_suite());
    server.add_networks(small_nets());
    let nets = small_nets();

    let submitted = Arc::new(AtomicU64::new(0));
    let answered = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for tid in 0..6u64 {
            let server = Arc::clone(&server);
            let nets = &nets;
            let submitted = Arc::clone(&submitted);
            let answered = Arc::clone(&answered);
            handles.push(s.spawn(move || {
                for i in 0..30u64 {
                    let net = &nets[((tid + i) as usize) % nets.len()];
                    let deadline = match i % 3 {
                        0 => None,
                        1 => Some(60_000),
                        _ => Some(0),
                    };
                    let pending = match deadline {
                        None => server.submit("t", net.name(), 1 + (i as usize % 4)),
                        Some(ms) => {
                            server.submit_deadline("t", net.name(), 1 + (i as usize % 4), ms)
                        }
                    };
                    match pending {
                        Ok(p) => {
                            submitted.fetch_add(1, Ordering::Relaxed);
                            // Every admitted request must resolve to a
                            // terminal answer — Ok or a typed error —
                            // even with shutdown racing us.
                            match p.wait() {
                                Ok(_)
                                | Err(ServeError::DeadlineExceeded)
                                | Err(ServeError::Overloaded)
                                | Err(ServeError::Internal(_))
                                | Err(ServeError::ShuttingDown) => {
                                    answered.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(other) => panic!("non-terminal answer {other:?}"),
                            }
                        }
                        // Pre-admission outcomes are terminal by
                        // construction.
                        Err(ServeError::Overloaded)
                        | Err(ServeError::DeadlineExceeded)
                        | Err(ServeError::ShuttingDown) => {}
                        Err(other) => panic!("unexpected submit error {other:?}"),
                    }
                }
            }));
        }
        // Pull the rug mid-burst.
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    });

    assert_eq!(
        submitted.load(Ordering::Relaxed),
        answered.load(Ordering::Relaxed),
        "every admitted request must be answered exactly once"
    );
    assert_eq!(server.worker_handles(), 0, "no worker thread leaks");
    let s = server.stats();
    assert!(
        s.completed + s.expired + s.panicked <= s.admitted,
        "counters must conserve: {s:?}"
    );
}

#[test]
fn recoverable_transport_faults_never_lose_a_request() {
    let server = Arc::new(PredictionServer::start(&config(2, 32)));
    server.register_tenant("t", train_suite());
    server.add_networks(small_nets());
    let tcp = TcpServer::serve_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        TcpConfig {
            idle_timeout: Duration::from_secs(10),
            frame_timeout: Duration::from_secs(2),
            poll: Duration::from_millis(20),
        },
    )
    .unwrap();
    let net = small_nets().remove(0);

    // Torn frames + stalls at rate 1.0: every frame is faulted, every
    // request must still succeed (the protocol reassembles).
    let plan = TransportFaultPlan::recoverable_only(7, 1.0);
    let stream = TcpStream::connect(tcp.addr()).unwrap();
    let mut faulty = FaultyTransport::new(stream, plan, 1);
    for batch in [1usize, 2, 4] {
        let req = Request::Predict {
            tenant: "t".into(),
            network: net.name().into(),
            batch,
            deadline_ms: None,
        };
        write_frame(&mut faulty, &req.format()).unwrap();
        let line = read_frame(&mut faulty).unwrap().unwrap();
        let resp = Response::parse(&line).unwrap();
        assert!(
            matches!(resp, Response::Ok { .. }),
            "faulted transport must still serve: {resp:?}"
        );
    }
    assert!(faulty.stats().total() >= 3, "faults must actually fire");
    drop(faulty);
    tcp.shutdown();
    server.shutdown();
}

#[test]
fn destructive_transport_faults_fail_loudly_and_leave_the_server_healthy() {
    let server = Arc::new(PredictionServer::start(&config(2, 32)));
    server.register_tenant("t", train_suite());
    server.add_networks(small_nets());
    let tcp = TcpServer::serve(Arc::clone(&server), "127.0.0.1:0").unwrap();
    let net = small_nets().remove(0);

    // Disconnect-only at rate 1.0: the very first frame dies after its
    // length prefix. The client sees a hard error; the server must shrug
    // off the torn frame.
    let mut plan = TransportFaultPlan::chaos(3, 1.0);
    plan.kinds = TransportFaultKinds {
        torn: false,
        corrupt: false,
        stall: false,
        disconnect: true,
    };
    let stream = TcpStream::connect(tcp.addr()).unwrap();
    let mut faulty = FaultyTransport::new(stream, plan, 9);
    // Batch 8 on purpose: XOR-ing 0x04 into any byte of this payload —
    // including the batch digit ('8' -> '<') — yields a request the
    // server must reject, so the corruption leg below is deterministic.
    let req = Request::Predict {
        tenant: "t".into(),
        network: net.name().into(),
        batch: 8,
        deadline_ms: None,
    };
    assert!(write_frame(&mut faulty, &req.format()).is_err());
    assert!(faulty.is_dead());
    drop(faulty);

    // Corruption: the frame arrives complete but garbled; the server
    // answers with a structured response on the same connection instead
    // of wedging or crashing.
    let mut plan = TransportFaultPlan::chaos(5, 1.0);
    plan.kinds = TransportFaultKinds {
        torn: false,
        corrupt: true,
        stall: false,
        disconnect: false,
    };
    let stream = TcpStream::connect(tcp.addr()).unwrap();
    let mut faulty = FaultyTransport::new(stream, plan, 10);
    write_frame(&mut faulty, &req.format()).unwrap();
    assert_eq!(faulty.stats().corrupted, 1);
    let line = read_frame(&mut faulty).unwrap().unwrap();
    // One flipped byte either breaks parsing or dodges every name —
    // both must come back as a structured, non-Ok reply.
    let resp = Response::parse(&line).unwrap();
    assert!(
        !matches!(resp, Response::Ok { .. }),
        "a corrupted request must not be priced: {resp:?}"
    );
    drop(faulty);

    // After all that abuse a clean client is served normally.
    let mut client = Client::connect(tcp.addr()).unwrap();
    assert!(client.predict("t", net.name(), 1).is_ok());
    tcp.shutdown();
    server.shutdown();
}

#[test]
fn slowloris_and_idle_connections_are_dropped() {
    let server = Arc::new(PredictionServer::start(&config(1, 8)));
    server.register_tenant("t", train_suite());
    server.add_networks(small_nets());
    let tcp = TcpServer::serve_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        TcpConfig {
            idle_timeout: Duration::from_millis(200),
            frame_timeout: Duration::from_millis(200),
            poll: Duration::from_millis(20),
        },
    )
    .unwrap();

    // Slowloris: start a frame, never finish it. The server must hang
    // up within the frame budget instead of pinning the handler thread.
    let mut half_open = TcpStream::connect(tcp.addr()).unwrap();
    half_open.write_all(&[0u8, 0u8]).unwrap(); // 2 of 4 prefix bytes
    half_open.flush().unwrap();
    half_open
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 8];
    let n = half_open.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "server should close the slowloris connection");

    // Idle: connect and say nothing; the idle deadline hangs up.
    let mut idle = TcpStream::connect(tcp.addr()).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let n = idle.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "server should close the idle connection");

    // Honest clients on the same server are unaffected.
    let net = small_nets().remove(0);
    let mut client = Client::connect(tcp.addr()).unwrap();
    assert!(client.predict("t", net.name(), 1).is_ok());
    tcp.shutdown();
    server.shutdown();
}

#[test]
fn client_retries_reconnect_and_give_up_typed() {
    // A flaky front end: accepts at most `total` connections, drops the
    // first `drops` right after accept, and speaks one protocol round on
    // the first surviving one. Bounding `total` keeps the thread
    // joinable in every scenario.
    fn flaky_listener(
        drops: usize,
        total: usize,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for i in 0..total {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                if i < drops {
                    drop(stream); // immediate disconnect
                    continue;
                }
                if let Ok(Some(_line)) = read_frame(&mut stream) {
                    let _ = write_frame(&mut stream, &Response::Overloaded.format());
                }
                return;
            }
        });
        (addr, handle)
    }

    // With a retry budget the client reconnects through the failures:
    // the initial connection plus one per failed attempt are dropped,
    // the third attempt's connection is served.
    let (addr, handle) = flaky_listener(2, 3);
    let mut client = Client::connect_with(addr, RetryPolicy::fast(4, 11)).unwrap();
    let resp = client.call(&Request::Stats).unwrap();
    assert!(matches!(resp, Response::Overloaded));
    handle.join().unwrap();

    // With the budget exhausted the failure is typed, not a raw IO
    // error: 3 attempts (fast(2)) consume exactly 3 connections.
    let (addr, handle) = flaky_listener(usize::MAX, 3);
    let mut client = Client::connect_with(addr, RetryPolicy::fast(2, 13)).unwrap();
    let err = client.call(&Request::Stats).unwrap_err();
    match err {
        WireError::Exhausted { attempts, .. } => assert_eq!(attempts, 3),
        other => panic!("expected Exhausted, got {other:?}"),
    }
    drop(client);
    handle.join().unwrap();
}
