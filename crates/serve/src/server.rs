//! The in-process multi-tenant prediction server.
//!
//! [`PredictionServer`] owns the three moving parts of the serving
//! story:
//!
//! * a tenant registry mapping tenant names to immutable
//!   [`Arc<Workflow>`] suites (swapped atomically on retrain by
//!   [`PredictionServer::update_suite`]);
//! * a shared [`SharedPlanCache`] keyed by suite generation, so a suite
//!   swap retires the old tenant's plans by construction;
//! * a bounded admission queue ([`dnnperf_sched::Bounded`]) drained in
//!   batches by a fixed worker pool — a full queue sheds the request
//!   with [`ServeError::Overloaded`] instead of queueing unboundedly.
//!
//! Requests resolve their suite at **submit time**: the job carries the
//! `Arc<Workflow>` it was admitted against, so a racing retrain can
//! never make an in-flight request mix models from two training runs —
//! each request is deterministically served by exactly one suite
//! snapshot.
//!
//! # Failure model
//!
//! Every submitted request receives **exactly one terminal answer**, no
//! matter what fails:
//!
//! * **Deadlines.** A request may carry a time budget. A zero budget —
//!   or a budget smaller than the estimated queue wait (EWMA of service
//!   time × queue depth ÷ workers) — is shed at submission with
//!   [`ServeError::DeadlineExceeded`]. Admitted requests that expire
//!   while queued are answered the same way: workers check expiry before
//!   pricing, and a producer that finds the queue full first sweeps
//!   expired entries out (answering their waiters) before shedding
//!   fresh work with [`ServeError::Overloaded`].
//! * **Worker supervision.** Each worker runs its drain loop under
//!   `catch_unwind`. If serving a request panics, the supervisor answers
//!   that request's waiter with [`ServeError::Internal`], requeues the
//!   untouched remainder of the drained batch, and respawns the worker —
//!   a panic never hangs a client and never shrinks the pool. Panics
//!   during shutdown skip the respawn and answer rescued jobs with
//!   [`ServeError::ShuttingDown`].
//! * **Shutdown.** [`PredictionServer::shutdown`] closes the queue,
//!   joins every worker (including respawns), and answers whatever no
//!   worker picked up with [`ServeError::ShuttingDown`].

use crate::cache::{CacheConfig, CacheStats, SharedPlanCache};
use crate::fault::{InjectedWorkerPanic, PanicPlan};
use crate::protocol::Response;
use dnnperf_core::{GracefulPrediction, PredictError, Workflow};
use dnnperf_dnn::Network;
use dnnperf_sched::sync::{lock_unpoisoned, read_unpoisoned, wait_unpoisoned, write_unpoisoned};
use dnnperf_sched::{Bounded, Clock, SendRejected, SystemClock};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Errors a serving request can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No suite is registered under this tenant name.
    UnknownTenant(String),
    /// The network name is not in the server catalog.
    UnknownNetwork(String),
    /// Admission control shed the request (queue full).
    Overloaded,
    /// The request's deadline expired before it could be served — either
    /// shed at submission (zero or unmeetable budget) or swept/expired
    /// after admission.
    DeadlineExceeded,
    /// The server is shutting down.
    ShuttingDown,
    /// A worker crashed while serving this request; the supervisor
    /// answered on its behalf. The request may be retried.
    Internal(String),
    /// Plan compilation / prediction failed.
    Predict(PredictError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            ServeError::UnknownNetwork(n) => write!(f, "unknown network {n:?}"),
            ServeError::Overloaded => write!(f, "server overloaded"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::Internal(m) => write!(f, "internal server error: {m}"),
            ServeError::Predict(e) => write!(f, "prediction failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PredictError> for ServeError {
    fn from(e: PredictError) -> Self {
        ServeError::Predict(e)
    }
}

/// A completed prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Strict-path prediction in seconds.
    Strict(f64),
    /// Graceful-ladder prediction with degradation notes.
    Graceful(GracefulPrediction),
}

impl Reply {
    /// The predicted seconds regardless of path.
    pub fn seconds(&self) -> f64 {
        match self {
            Reply::Strict(s) => *s,
            Reply::Graceful(g) => g.seconds,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Strict,
    Graceful,
}

type SlotResult = Result<Reply, ServeError>;

struct Slot {
    result: Mutex<Option<SlotResult>>,
    done: Condvar,
}

impl Slot {
    /// First write wins: a slot can be raced by a worker finishing and a
    /// supervisor/sweeper answering on the worker's behalf, and the
    /// waiter must see exactly one terminal answer.
    fn fill(&self, r: SlotResult) {
        let mut guard = lock_unpoisoned(&self.result);
        if guard.is_none() {
            *guard = Some(r);
        }
        drop(guard);
        self.done.notify_all();
    }
}

/// A handle to an admitted request; [`Pending::wait`] blocks for the
/// worker pool to answer it.
#[derive(Debug)]
pub struct Pending {
    slot: Arc<Slot>,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Slot")
    }
}

impl Pending {
    /// Blocks until the request is answered and returns the outcome.
    pub fn wait(self) -> SlotResult {
        let mut guard = lock_unpoisoned(&self.slot.result);
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            guard = wait_unpoisoned(&self.slot.done, guard);
        }
    }
}

/// One admitted request: the suite and network were resolved at submit
/// time, pinning the exact suite snapshot that will serve it. Cloneable
/// so a worker can keep the job visible to its supervisor while serving.
#[derive(Clone)]
struct Job {
    suite: Arc<Workflow>,
    net: Arc<Network>,
    batch: usize,
    mode: Mode,
    slot: Arc<Slot>,
    /// Admission sequence number (the value of the `admitted` counter
    /// when this job entered the queue). Drives deterministic panic
    /// injection in chaos runs.
    seq: u64,
    /// Absolute expiry instant on the server clock, if the request
    /// carried a deadline.
    expires_at: Option<Duration>,
}

impl Job {
    fn expired(&self, now: Duration) -> bool {
        self.expires_at.is_some_and(|t| now >= t)
    }
}

/// Configuration of a [`PredictionServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the admission queue. Zero is permitted
    /// (useful in tests: admitted requests stay queued).
    pub workers: usize,
    /// Admission queue depth; a full queue sheds with
    /// [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Maximum requests a worker drains per wakeup (request batching).
    pub max_batch: usize,
    /// Plan cache geometry and memory budget.
    pub cache: CacheConfig,
    /// Seeded worker-panic injection for chaos testing: a worker about
    /// to serve admission sequence `seq` panics when the plan fires.
    /// `None` (the default, and the only production setting) never
    /// panics.
    pub panic_plan: Option<PanicPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 256,
            max_batch: 16,
            cache: CacheConfig::default(),
            panic_plan: None,
        }
    }
}

/// Point-in-time server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests answered by the worker pool.
    pub completed: u64,
    /// Requests shed by admission control (queue full).
    pub shed: u64,
    /// Requests shed at submission because their deadline was zero or
    /// below the estimated queue wait.
    pub shed_deadline: u64,
    /// Admitted requests whose deadline expired before service (swept
    /// from the queue or caught by a worker pre-pricing).
    pub expired: u64,
    /// Requests answered [`ServeError::Internal`] because the worker
    /// serving them panicked.
    pub panicked: u64,
    /// Worker threads respawned by the supervisor after a panic.
    pub respawns: u64,
    /// Jobs rescued from a crashed worker's batch and requeued.
    pub requeued: u64,
    /// Plan cache counters.
    pub cache: CacheStats,
}

struct Inner {
    tenants: RwLock<BTreeMap<String, Arc<Workflow>>>,
    catalog: RwLock<BTreeMap<String, Arc<Network>>>,
    cache: SharedPlanCache,
    queue: Bounded<Job>,
    clock: Arc<dyn Clock + Send + Sync>,
    panic_plan: Option<PanicPlan>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
    max_batch: usize,
    /// Issues `Job::seq` values. Separate from `admitted` because a
    /// shed job consumes no admission slot but has already drawn a seq.
    seq_counter: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    shed_deadline: AtomicU64,
    expired: AtomicU64,
    panicked: AtomicU64,
    respawns: AtomicU64,
    requeued: AtomicU64,
    /// EWMA of per-request service time in nanoseconds (0 = no sample
    /// yet; real samples are clamped to at least 1).
    ewma_service_ns: AtomicU64,
}

impl Inner {
    fn serve_one(&self, job: Job) {
        // Deadline check before pricing: a request that expired while
        // queued gets its typed answer instead of a stale prediction.
        if job.expired(self.clock.now()) {
            // Counters update before the slot fills, here and below: a
            // waiter that wakes from `wait()` must already see its own
            // request reflected in `stats()`.
            self.expired.fetch_add(1, Ordering::Relaxed);
            job.slot.fill(Err(ServeError::DeadlineExceeded));
            return;
        }
        if let Some(plan) = &self.panic_plan {
            if plan.fires(job.seq) {
                // Chaos injection: unwind exactly as a pricing bug would.
                std::panic::panic_any(InjectedWorkerPanic { seq: job.seq });
            }
        }
        let started = self.clock.now();
        let result = self
            .cache
            .get_or_compile(&job.suite, &job.net, job.batch)
            .map(|plan| match job.mode {
                Mode::Strict => Reply::Strict(plan.predict()),
                Mode::Graceful => Reply::Graceful(plan.predict_graceful()),
            })
            .map_err(ServeError::from);
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.observe_service(self.clock.now().saturating_sub(started));
        job.slot.fill(result);
    }

    fn observe_service(&self, d: Duration) {
        let sample = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).max(1);
        let old = self.ewma_service_ns.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            old.saturating_mul(7).saturating_add(sample) / 8
        };
        self.ewma_service_ns.store(new.max(1), Ordering::Relaxed);
    }

    /// Estimated time a freshly admitted request will wait in the queue,
    /// from the service-time EWMA and the current backlog. Zero until
    /// the first request completes.
    fn estimated_wait(&self) -> Duration {
        let ewma = self.ewma_service_ns.load(Ordering::Relaxed);
        if ewma == 0 || self.worker_count == 0 {
            return Duration::ZERO;
        }
        let backlog = self.queue.len() as u64;
        Duration::from_nanos(ewma.saturating_mul(backlog) / self.worker_count as u64)
    }

    /// Sweeps expired jobs out of the admission queue, answering each
    /// waiter with [`ServeError::DeadlineExceeded`]. Returns how many
    /// were evicted.
    fn sweep_expired(&self) -> usize {
        let now = self.clock.now();
        let dead = self.queue.sweep(|job| job.expired(now));
        let n = dead.len();
        for job in dead {
            self.expired.fetch_add(1, Ordering::Relaxed);
            job.slot.fill(Err(ServeError::DeadlineExceeded));
        }
        n
    }

    /// The worker drain loop. Jobs move from the queue into `pending`
    /// (this incarnation's in-service window) *before* being served, so
    /// the supervisor can answer them if this loop unwinds.
    fn worker_loop(&self, pending: &Mutex<VecDeque<Job>>) {
        loop {
            let batch = self.queue.recv_batch(self.max_batch);
            if batch.is_empty() {
                return; // closed and drained
            }
            {
                let mut held = lock_unpoisoned(pending);
                held.extend(batch);
            }
            loop {
                let job = {
                    let held = lock_unpoisoned(pending);
                    held.front().cloned()
                };
                let Some(job) = job else { break };
                // The job stays at the front of `pending` while being
                // served: if serve_one panics, the supervisor knows
                // exactly which waiter to answer.
                self.serve_one(job);
                lock_unpoisoned(pending).pop_front();
            }
        }
    }

    /// Post-panic supervision: answer the in-service job with a typed
    /// internal error, requeue the untouched remainder of the batch, and
    /// respawn the worker unless the server is shutting down.
    fn supervise_crash(self: &Arc<Self>, pending: &Mutex<VecDeque<Job>>) {
        let mut held = lock_unpoisoned(pending);
        let victim = held.pop_front();
        while let Some(job) = held.pop_front() {
            match self.queue.try_send(job) {
                Ok(()) => {
                    self.requeued.fetch_add(1, Ordering::Relaxed);
                }
                Err((job, SendRejected::Closed)) => {
                    job.slot.fill(Err(ServeError::ShuttingDown));
                }
                Err((job, SendRejected::Full)) => {
                    // The queue refilled while this worker was down; the
                    // waiter still gets a terminal, typed answer.
                    job.slot.fill(Err(ServeError::Internal(
                        "request dropped during worker recovery".into(),
                    )));
                }
            }
        }
        drop(held);
        // Respawn under the registry lock so shutdown (which closes the
        // queue first, then drains the registry until empty) can never
        // miss a replacement.
        {
            let mut workers = lock_unpoisoned(&self.workers);
            if !self.queue.is_closed() {
                self.respawns.fetch_add(1, Ordering::Relaxed);
                workers.push(spawn_worker(self));
            }
        }
        // The victim's slot fills last so the woken waiter observes the
        // panic counter, the requeues, and the replacement worker.
        if let Some(job) = victim {
            self.panicked.fetch_add(1, Ordering::Relaxed);
            job.slot.fill(Err(ServeError::Internal(
                "worker panicked mid-service".into(),
            )));
        }
    }
}

/// Spawns one supervised worker thread and returns its handle.
fn spawn_worker(inner: &Arc<Inner>) -> JoinHandle<()> {
    let inner = Arc::clone(inner);
    std::thread::spawn(move || {
        let pending = Mutex::new(VecDeque::new());
        let outcome = catch_unwind(AssertUnwindSafe(|| inner.worker_loop(&pending)));
        if outcome.is_err() {
            inner.supervise_crash(&pending);
        }
    })
}

/// The multi-tenant prediction server. See the module docs.
pub struct PredictionServer {
    inner: Arc<Inner>,
}

impl PredictionServer {
    /// Starts a server with `config` on the real system clock: allocates
    /// the cache and queue and spawns the worker pool.
    pub fn start(config: &ServerConfig) -> Self {
        PredictionServer::start_with_clock(config, Arc::new(SystemClock))
    }

    /// Starts a server with an injected clock (deadline tests use a
    /// [`dnnperf_sched::RecordingClock`] so expiry is deterministic).
    pub fn start_with_clock(config: &ServerConfig, clock: Arc<dyn Clock + Send + Sync>) -> Self {
        let inner = Arc::new(Inner {
            tenants: RwLock::new(BTreeMap::new()),
            catalog: RwLock::new(BTreeMap::new()),
            cache: SharedPlanCache::new(&config.cache),
            queue: Bounded::new(config.queue_depth.max(1)),
            clock,
            panic_plan: config.panic_plan.clone(),
            workers: Mutex::new(Vec::new()),
            worker_count: config.workers,
            max_batch: config.max_batch.max(1),
            seq_counter: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
            ewma_service_ns: AtomicU64::new(0),
        });
        {
            let mut workers = lock_unpoisoned(&inner.workers);
            for _ in 0..config.workers {
                workers.push(spawn_worker(&inner));
            }
        }
        PredictionServer { inner }
    }

    /// Registers (or replaces) the suite served under `tenant`.
    pub fn register_tenant(&self, tenant: &str, suite: Arc<Workflow>) {
        write_unpoisoned(&self.inner.tenants).insert(tenant.to_string(), suite);
    }

    /// Atomically swaps `tenant`'s suite for a retrained one and purges
    /// the retired suite's plans from the cache. Returns the number of
    /// cache entries purged.
    ///
    /// In-flight requests admitted against the old suite still complete
    /// against it (they pinned the `Arc` at submit time); every request
    /// admitted after this call is served by `suite`.
    pub fn update_suite(&self, tenant: &str, suite: Arc<Workflow>) -> usize {
        let old = write_unpoisoned(&self.inner.tenants).insert(tenant.to_string(), suite);
        match old {
            Some(old) => self.inner.cache.purge_generation(old.generation()),
            None => 0,
        }
    }

    /// Adds networks to the catalog clients can request by name.
    pub fn add_networks<I: IntoIterator<Item = Network>>(&self, nets: I) {
        let mut catalog = write_unpoisoned(&self.inner.catalog);
        for net in nets {
            catalog.insert(net.name().to_string(), Arc::new(net));
        }
    }

    /// Number of networks in the catalog.
    pub fn catalog_len(&self) -> usize {
        read_unpoisoned(&self.inner.catalog).len()
    }

    /// The server's clock (tests use it to align fake time with the
    /// server's deadline arithmetic).
    pub fn clock(&self) -> Arc<dyn Clock + Send + Sync> {
        Arc::clone(&self.inner.clock)
    }

    fn resolve(
        &self,
        tenant: &str,
        network: &str,
    ) -> Result<(Arc<Workflow>, Arc<Network>), ServeError> {
        let suite = read_unpoisoned(&self.inner.tenants)
            .get(tenant)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))?;
        let net = read_unpoisoned(&self.inner.catalog)
            .get(network)
            .cloned()
            .ok_or_else(|| ServeError::UnknownNetwork(network.to_string()))?;
        Ok((suite, net))
    }

    fn submit_mode(
        &self,
        tenant: &str,
        network: &str,
        batch: usize,
        mode: Mode,
        deadline_ms: Option<u64>,
    ) -> Result<Pending, ServeError> {
        let (suite, net) = self.resolve(tenant, network)?;
        let budget = deadline_ms.map(Duration::from_millis);
        if let Some(budget) = budget {
            // Early shed: don't admit work we already expect to expire.
            if budget.is_zero() || self.inner.estimated_wait() > budget {
                self.inner.shed_deadline.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::DeadlineExceeded);
            }
        }
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            done: Condvar::new(),
        });
        let job = Job {
            suite,
            net,
            batch,
            mode,
            slot: Arc::clone(&slot),
            seq: self.inner.seq_counter.fetch_add(1, Ordering::Relaxed),
            expires_at: budget.map(|b| self.inner.clock.now() + b),
        };
        let job = match self.inner.queue.try_send(job) {
            Ok(()) => {
                self.inner.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(Pending { slot });
            }
            Err((job, SendRejected::Full)) => job,
            Err((_, SendRejected::Closed)) => return Err(ServeError::ShuttingDown),
        };
        // The queue is full: evict expired entries (answering their
        // waiters) before shedding live work.
        if self.inner.sweep_expired() > 0 {
            match self.inner.queue.try_send(job) {
                Ok(()) => {
                    self.inner.admitted.fetch_add(1, Ordering::Relaxed);
                    return Ok(Pending { slot });
                }
                Err((_, SendRejected::Closed)) => return Err(ServeError::ShuttingDown),
                Err((_, SendRejected::Full)) => {}
            }
        }
        self.inner.shed.fetch_add(1, Ordering::Relaxed);
        Err(ServeError::Overloaded)
    }

    /// Submits a strict prediction request; returns a [`Pending`] handle
    /// once admitted.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] / [`ServeError::UnknownNetwork`] for
    /// unresolvable requests, [`ServeError::Overloaded`] when admission
    /// control sheds, [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, tenant: &str, network: &str, batch: usize) -> Result<Pending, ServeError> {
        self.submit_mode(tenant, network, batch, Mode::Strict, None)
    }

    /// Submits a strict prediction with a deadline of `deadline_ms`
    /// milliseconds from now.
    ///
    /// # Errors
    ///
    /// As for [`PredictionServer::submit`], plus
    /// [`ServeError::DeadlineExceeded`] when the budget is zero or below
    /// the estimated queue wait.
    pub fn submit_deadline(
        &self,
        tenant: &str,
        network: &str,
        batch: usize,
        deadline_ms: u64,
    ) -> Result<Pending, ServeError> {
        self.submit_mode(tenant, network, batch, Mode::Strict, Some(deadline_ms))
    }

    /// Submits a graceful-ladder request; returns a [`Pending`] handle
    /// once admitted.
    ///
    /// # Errors
    ///
    /// As for [`PredictionServer::submit`].
    pub fn submit_graceful(
        &self,
        tenant: &str,
        network: &str,
        batch: usize,
    ) -> Result<Pending, ServeError> {
        self.submit_mode(tenant, network, batch, Mode::Graceful, None)
    }

    /// Submits a graceful-ladder request with a deadline (see
    /// [`PredictionServer::submit_deadline`]).
    ///
    /// # Errors
    ///
    /// As for [`PredictionServer::submit_deadline`].
    pub fn submit_graceful_deadline(
        &self,
        tenant: &str,
        network: &str,
        batch: usize,
        deadline_ms: u64,
    ) -> Result<Pending, ServeError> {
        self.submit_mode(tenant, network, batch, Mode::Graceful, Some(deadline_ms))
    }

    /// Submits per the wire request's mode and deadline.
    pub(crate) fn submit_request(
        &self,
        tenant: &str,
        network: &str,
        batch: usize,
        graceful: bool,
        deadline_ms: Option<u64>,
    ) -> Result<Pending, ServeError> {
        let mode = if graceful {
            Mode::Graceful
        } else {
            Mode::Strict
        };
        self.submit_mode(tenant, network, batch, mode, deadline_ms)
    }

    /// Predicts `network`'s time for `tenant` (submit + wait).
    ///
    /// Bit-identical to calling `suite.predict(net, batch)` directly on
    /// the tenant's current suite.
    ///
    /// # Errors
    ///
    /// As for [`PredictionServer::submit`], plus [`ServeError::Predict`]
    /// from the prediction itself.
    pub fn predict(&self, tenant: &str, network: &str, batch: usize) -> Result<f64, ServeError> {
        match self.submit(tenant, network, batch)?.wait()? {
            Reply::Strict(s) => Ok(s),
            Reply::Graceful(g) => Ok(g.seconds),
        }
    }

    /// Predicts with a deadline (submit + wait).
    ///
    /// # Errors
    ///
    /// As for [`PredictionServer::submit_deadline`], plus
    /// [`ServeError::DeadlineExceeded`] when the request expired while
    /// queued.
    pub fn predict_deadline(
        &self,
        tenant: &str,
        network: &str,
        batch: usize,
        deadline_ms: u64,
    ) -> Result<f64, ServeError> {
        match self
            .submit_deadline(tenant, network, batch, deadline_ms)?
            .wait()?
        {
            Reply::Strict(s) => Ok(s),
            Reply::Graceful(g) => Ok(g.seconds),
        }
    }

    /// Predicts with the graceful-degradation ladder (submit + wait).
    ///
    /// # Errors
    ///
    /// As for [`PredictionServer::predict`].
    pub fn predict_graceful(
        &self,
        tenant: &str,
        network: &str,
        batch: usize,
    ) -> Result<GracefulPrediction, ServeError> {
        match self.submit_graceful(tenant, network, batch)?.wait()? {
            Reply::Graceful(g) => Ok(g),
            Reply::Strict(s) => Ok(GracefulPrediction {
                seconds: s,
                notes: Vec::new(),
            }),
        }
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            admitted: self.inner.admitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            shed_deadline: self.inner.shed_deadline.load(Ordering::Relaxed),
            expired: self.inner.expired.load(Ordering::Relaxed),
            panicked: self.inner.panicked.load(Ordering::Relaxed),
            respawns: self.inner.respawns.load(Ordering::Relaxed),
            requeued: self.inner.requeued.load(Ordering::Relaxed),
            cache: self.inner.cache.stats(),
        }
    }

    /// The stats as wire `key=value` pairs (the `stats` response).
    pub fn stats_response(&self) -> Response {
        let s = self.stats();
        Response::Stats(vec![
            ("admitted".to_string(), s.admitted),
            ("completed".to_string(), s.completed),
            ("shed".to_string(), s.shed),
            ("shed_deadline".to_string(), s.shed_deadline),
            ("expired".to_string(), s.expired),
            ("panicked".to_string(), s.panicked),
            ("respawns".to_string(), s.respawns),
            ("requeued".to_string(), s.requeued),
            ("cache_hits".to_string(), s.cache.hits),
            ("cache_misses".to_string(), s.cache.misses),
            ("cache_compiles".to_string(), s.cache.compiles),
            ("cache_evictions".to_string(), s.cache.evictions),
            ("cache_entries".to_string(), s.cache.entries as u64),
            ("cache_bytes".to_string(), s.cache.bytes as u64),
        ])
    }

    /// The shared plan cache (for inspection in tests and benches).
    pub fn cache(&self) -> &SharedPlanCache {
        &self.inner.cache
    }

    /// Number of registered worker handles: the initial pool plus every
    /// supervisor respawn (exited-but-unjoined workers included; the
    /// registry only drains at shutdown). Supervision tests use
    /// `worker_handles() == workers + respawns` to prove every panic
    /// produced a replacement, and `worker_handles() == 0` after
    /// [`PredictionServer::shutdown`] to prove no thread leaked.
    pub fn worker_handles(&self) -> usize {
        lock_unpoisoned(&self.inner.workers).len()
    }

    /// Drains and stops the server: closes the admission queue, joins
    /// the worker pool — including workers respawned by the supervisor
    /// while the join is in progress — and answers any request no worker
    /// picked up with [`ServeError::ShuttingDown`].
    pub fn shutdown(&self) {
        self.inner.queue.close();
        // Respawns register under the same lock before their parent
        // thread exits, so draining until the registry is empty joins
        // every worker that will ever exist.
        loop {
            let handles: Vec<_> = lock_unpoisoned(&self.inner.workers).drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        // With zero workers (or a poisoned pool) accepted jobs may still
        // be queued; answer them rather than leaving waiters hanging.
        loop {
            let leftover = self.inner.queue.recv_batch(64);
            if leftover.is_empty() {
                break;
            }
            for job in leftover {
                job.slot.fill(Err(ServeError::ShuttingDown));
            }
        }
    }
}

impl std::fmt::Debug for PredictionServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "PredictionServer(admitted {}, completed {}, shed {}, expired {}, panicked {}, {:?})",
            s.admitted, s.completed, s.shed, s.expired, s.panicked, self.inner.cache
        )
    }
}

impl Drop for PredictionServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}
