//! The in-process multi-tenant prediction server.
//!
//! [`PredictionServer`] owns the three moving parts of the serving
//! story:
//!
//! * a tenant registry mapping tenant names to immutable
//!   [`Arc<Workflow>`] suites (swapped atomically on retrain by
//!   [`PredictionServer::update_suite`]);
//! * a shared [`SharedPlanCache`] keyed by suite generation, so a suite
//!   swap retires the old tenant's plans by construction;
//! * a bounded admission queue ([`dnnperf_sched::Bounded`]) drained in
//!   batches by a fixed worker pool — a full queue sheds the request
//!   with [`ServeError::Overloaded`] instead of queueing unboundedly.
//!
//! Requests resolve their suite at **submit time**: the job carries the
//! `Arc<Workflow>` it was admitted against, so a racing retrain can
//! never make an in-flight request mix models from two training runs —
//! each request is deterministically served by exactly one suite
//! snapshot.

use crate::cache::{CacheConfig, CacheStats, SharedPlanCache};
use crate::protocol::Response;
use dnnperf_core::{GracefulPrediction, PredictError, Workflow};
use dnnperf_dnn::Network;
use dnnperf_sched::{Bounded, SendRejected};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;

/// Errors a serving request can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No suite is registered under this tenant name.
    UnknownTenant(String),
    /// The network name is not in the server catalog.
    UnknownNetwork(String),
    /// Admission control shed the request (queue full).
    Overloaded,
    /// The server is shutting down.
    ShuttingDown,
    /// Plan compilation / prediction failed.
    Predict(PredictError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            ServeError::UnknownNetwork(n) => write!(f, "unknown network {n:?}"),
            ServeError::Overloaded => write!(f, "server overloaded"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::Predict(e) => write!(f, "prediction failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PredictError> for ServeError {
    fn from(e: PredictError) -> Self {
        ServeError::Predict(e)
    }
}

/// A completed prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Strict-path prediction in seconds.
    Strict(f64),
    /// Graceful-ladder prediction with degradation notes.
    Graceful(GracefulPrediction),
}

impl Reply {
    /// The predicted seconds regardless of path.
    pub fn seconds(&self) -> f64 {
        match self {
            Reply::Strict(s) => *s,
            Reply::Graceful(g) => g.seconds,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Strict,
    Graceful,
}

type SlotResult = Result<Reply, ServeError>;

struct Slot {
    result: Mutex<Option<SlotResult>>,
    done: Condvar,
}

impl Slot {
    fn fill(&self, r: SlotResult) {
        let mut guard = self.result.lock().unwrap_or_else(PoisonError::into_inner);
        *guard = Some(r);
        drop(guard);
        self.done.notify_all();
    }
}

/// A handle to an admitted request; [`Pending::wait`] blocks for the
/// worker pool to answer it.
#[derive(Debug)]
pub struct Pending {
    slot: Arc<Slot>,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Slot")
    }
}

impl Pending {
    /// Blocks until the request is answered and returns the outcome.
    pub fn wait(self) -> SlotResult {
        let mut guard = self
            .slot
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            guard = self
                .slot
                .done
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One admitted request: the suite and network were resolved at submit
/// time, pinning the exact suite snapshot that will serve it.
struct Job {
    suite: Arc<Workflow>,
    net: Arc<Network>,
    batch: usize,
    mode: Mode,
    slot: Arc<Slot>,
}

/// Configuration of a [`PredictionServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the admission queue. Zero is permitted
    /// (useful in tests: admitted requests stay queued).
    pub workers: usize,
    /// Admission queue depth; a full queue sheds with
    /// [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Maximum requests a worker drains per wakeup (request batching).
    pub max_batch: usize,
    /// Plan cache geometry and memory budget.
    pub cache: CacheConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 256,
            max_batch: 16,
            cache: CacheConfig::default(),
        }
    }
}

/// Point-in-time server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests answered by the worker pool.
    pub completed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Plan cache counters.
    pub cache: CacheStats,
}

struct Inner {
    tenants: RwLock<BTreeMap<String, Arc<Workflow>>>,
    catalog: RwLock<BTreeMap<String, Arc<Network>>>,
    cache: SharedPlanCache,
    queue: Bounded<Job>,
    admitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    max_batch: usize,
}

impl Inner {
    fn serve_one(&self, job: Job) {
        let result = self
            .cache
            .get_or_compile(&job.suite, &job.net, job.batch)
            .map(|plan| match job.mode {
                Mode::Strict => Reply::Strict(plan.predict()),
                Mode::Graceful => Reply::Graceful(plan.predict_graceful()),
            })
            .map_err(ServeError::from);
        job.slot.fill(result);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }
}

/// The multi-tenant prediction server. See the module docs.
pub struct PredictionServer {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl PredictionServer {
    /// Starts a server with `config`: allocates the cache and queue and
    /// spawns the worker pool.
    pub fn start(config: &ServerConfig) -> Self {
        let inner = Arc::new(Inner {
            tenants: RwLock::new(BTreeMap::new()),
            catalog: RwLock::new(BTreeMap::new()),
            cache: SharedPlanCache::new(&config.cache),
            queue: Bounded::new(config.queue_depth.max(1)),
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            max_batch: config.max_batch.max(1),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || loop {
                    let batch = inner.queue.recv_batch(inner.max_batch);
                    if batch.is_empty() {
                        return; // closed and drained
                    }
                    for job in batch {
                        inner.serve_one(job);
                    }
                })
            })
            .collect();
        PredictionServer {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Registers (or replaces) the suite served under `tenant`.
    pub fn register_tenant(&self, tenant: &str, suite: Arc<Workflow>) {
        self.inner
            .tenants
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(tenant.to_string(), suite);
    }

    /// Atomically swaps `tenant`'s suite for a retrained one and purges
    /// the retired suite's plans from the cache. Returns the number of
    /// cache entries purged.
    ///
    /// In-flight requests admitted against the old suite still complete
    /// against it (they pinned the `Arc` at submit time); every request
    /// admitted after this call is served by `suite`.
    pub fn update_suite(&self, tenant: &str, suite: Arc<Workflow>) -> usize {
        let old = self
            .inner
            .tenants
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(tenant.to_string(), suite);
        match old {
            Some(old) => self.inner.cache.purge_generation(old.generation()),
            None => 0,
        }
    }

    /// Adds networks to the catalog clients can request by name.
    pub fn add_networks<I: IntoIterator<Item = Network>>(&self, nets: I) {
        let mut catalog = self
            .inner
            .catalog
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        for net in nets {
            catalog.insert(net.name().to_string(), Arc::new(net));
        }
    }

    /// Number of networks in the catalog.
    pub fn catalog_len(&self) -> usize {
        self.inner
            .catalog
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    fn resolve(
        &self,
        tenant: &str,
        network: &str,
    ) -> Result<(Arc<Workflow>, Arc<Network>), ServeError> {
        let suite = self
            .inner
            .tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(tenant)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant(tenant.to_string()))?;
        let net = self
            .inner
            .catalog
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(network)
            .cloned()
            .ok_or_else(|| ServeError::UnknownNetwork(network.to_string()))?;
        Ok((suite, net))
    }

    fn submit_mode(
        &self,
        tenant: &str,
        network: &str,
        batch: usize,
        mode: Mode,
    ) -> Result<Pending, ServeError> {
        let (suite, net) = self.resolve(tenant, network)?;
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            done: Condvar::new(),
        });
        let job = Job {
            suite,
            net,
            batch,
            mode,
            slot: Arc::clone(&slot),
        };
        match self.inner.queue.try_send(job) {
            Ok(()) => {
                self.inner.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(Pending { slot })
            }
            Err((_, SendRejected::Full)) => {
                self.inner.shed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded)
            }
            Err((_, SendRejected::Closed)) => Err(ServeError::ShuttingDown),
        }
    }

    /// Submits a strict prediction request; returns a [`Pending`] handle
    /// once admitted.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] / [`ServeError::UnknownNetwork`] for
    /// unresolvable requests, [`ServeError::Overloaded`] when admission
    /// control sheds, [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, tenant: &str, network: &str, batch: usize) -> Result<Pending, ServeError> {
        self.submit_mode(tenant, network, batch, Mode::Strict)
    }

    /// Submits a graceful-ladder request; returns a [`Pending`] handle
    /// once admitted.
    ///
    /// # Errors
    ///
    /// As for [`PredictionServer::submit`].
    pub fn submit_graceful(
        &self,
        tenant: &str,
        network: &str,
        batch: usize,
    ) -> Result<Pending, ServeError> {
        self.submit_mode(tenant, network, batch, Mode::Graceful)
    }

    /// Predicts `network`'s time for `tenant` (submit + wait).
    ///
    /// Bit-identical to calling `suite.predict(net, batch)` directly on
    /// the tenant's current suite.
    ///
    /// # Errors
    ///
    /// As for [`PredictionServer::submit`], plus [`ServeError::Predict`]
    /// from the prediction itself.
    pub fn predict(&self, tenant: &str, network: &str, batch: usize) -> Result<f64, ServeError> {
        match self.submit(tenant, network, batch)?.wait()? {
            Reply::Strict(s) => Ok(s),
            Reply::Graceful(g) => Ok(g.seconds),
        }
    }

    /// Predicts with the graceful-degradation ladder (submit + wait).
    ///
    /// # Errors
    ///
    /// As for [`PredictionServer::predict`].
    pub fn predict_graceful(
        &self,
        tenant: &str,
        network: &str,
        batch: usize,
    ) -> Result<GracefulPrediction, ServeError> {
        match self.submit_graceful(tenant, network, batch)?.wait()? {
            Reply::Graceful(g) => Ok(g),
            Reply::Strict(s) => Ok(GracefulPrediction {
                seconds: s,
                notes: Vec::new(),
            }),
        }
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            admitted: self.inner.admitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            cache: self.inner.cache.stats(),
        }
    }

    /// The stats as wire `key=value` pairs (the `stats` response).
    pub fn stats_response(&self) -> Response {
        let s = self.stats();
        Response::Stats(vec![
            ("admitted".to_string(), s.admitted),
            ("completed".to_string(), s.completed),
            ("shed".to_string(), s.shed),
            ("cache_hits".to_string(), s.cache.hits),
            ("cache_misses".to_string(), s.cache.misses),
            ("cache_compiles".to_string(), s.cache.compiles),
            ("cache_evictions".to_string(), s.cache.evictions),
            ("cache_entries".to_string(), s.cache.entries as u64),
            ("cache_bytes".to_string(), s.cache.bytes as u64),
        ])
    }

    /// The shared plan cache (for inspection in tests and benches).
    pub fn cache(&self) -> &SharedPlanCache {
        &self.inner.cache
    }

    /// Drains and stops the server: closes the admission queue, joins
    /// the worker pool (which finishes every accepted request first) and
    /// answers any request no worker picked up with
    /// [`ServeError::ShuttingDown`].
    pub fn shutdown(&self) {
        self.inner.queue.close();
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        // With zero workers (or a poisoned pool) accepted jobs may still
        // be queued; answer them rather than leaving waiters hanging.
        loop {
            let leftover = self.inner.queue.recv_batch(64);
            if leftover.is_empty() {
                break;
            }
            for job in leftover {
                job.slot.fill(Err(ServeError::ShuttingDown));
            }
        }
    }
}

impl std::fmt::Debug for PredictionServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "PredictionServer(admitted {}, completed {}, shed {}, {:?})",
            s.admitted, s.completed, s.shed, self.inner.cache
        )
    }
}

impl Drop for PredictionServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}
