//! The sharded, memory-budgeted compiled-plan cache shared by every
//! tenant and worker of the prediction server.
//!
//! [`SharedPlanCache`] holds immutable [`Arc<CompiledPlan>`] values in
//! `N` independently locked shards, keyed by
//! `(suite generation, network fingerprint, batch)`:
//!
//! * the **suite generation** ([`Workflow::generation`]) is minted fresh
//!   by every training run, so swapping a retrained suite under the
//!   server changes every key it can produce — a reused cache
//!   *structurally cannot* serve plans compiled against retired models;
//! * the **network fingerprint** ([`network_fingerprint`]) hashes the
//!   full layer structure, so two different networks never alias;
//! * the **batch** completes the request identity.
//!
//! Each shard runs LRU eviction under a per-shard slice of the
//! configured memory budget, charging each entry
//! [`CompiledPlan::approx_bytes`]; the measured size never exceeds the
//! budget (a plan larger than a whole shard's slice is served uncached
//! rather than admitted). Misses compile *outside* the shard lock, with
//! an in-flight set + condvar so concurrent requests for the same key
//! wait for the one compiling thread instead of duplicating its work —
//! lookups stay wait-free of compilation, and each key compiles at most
//! once per residency.

use dnnperf_core::plan::{network_fingerprint, CompiledPlan};
use dnnperf_core::{PredictError, Workflow};
use dnnperf_dnn::Network;
use dnnperf_sched::sync::{lock_unpoisoned, wait_unpoisoned};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Identity of one cached plan. Ordering is derived so shards can use
/// ordinary B-tree maps (deterministic iteration, no hash seeding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PlanKey {
    /// Suite generation the plan was compiled against.
    pub generation: u64,
    /// Structural fingerprint of the network.
    pub fingerprint: u64,
    /// Batch size of the request.
    pub batch: usize,
}

impl PlanKey {
    /// The key for a request against a given suite.
    pub fn of(suite: &Workflow, net: &Network, batch: usize) -> Self {
        PlanKey {
            generation: suite.generation(),
            fingerprint: network_fingerprint(net),
            batch,
        }
    }

    /// FNV-1a mix of the key fields (shard selection).
    fn mix(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        for v in [self.generation, self.fingerprint, self.batch as u64] {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        }
        h
    }
}

/// Configuration of a [`SharedPlanCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of lock-striped shards. More shards mean less contention;
    /// the key mix spreads requests uniformly. Clamped to at least 1.
    pub shards: usize,
    /// Total memory budget in bytes across all shards, charged per entry
    /// via [`CompiledPlan::approx_bytes`]. Each shard gets an equal
    /// slice. Clamped to at least 1 byte per shard.
    pub budget_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            budget_bytes: 64 << 20,
        }
    }
}

/// A point-in-time snapshot of cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a resident plan.
    pub hits: u64,
    /// Lookups that compiled a plan (including waiting on another
    /// thread's compile of the same key).
    pub misses: u64,
    /// Plans actually compiled (`misses` minus piggy-backed waiters).
    pub compiles: u64,
    /// Entries evicted to stay under the memory budget.
    pub evictions: u64,
    /// Plans served uncached because they alone exceed a shard's budget
    /// slice.
    pub uncacheable: u64,
    /// Resident entries right now.
    pub entries: usize,
    /// Measured resident bytes right now.
    pub bytes: usize,
}

struct Entry {
    plan: Arc<CompiledPlan>,
    stamp: u64,
    bytes: usize,
}

#[derive(Default)]
struct ShardState {
    plans: BTreeMap<PlanKey, Entry>,
    /// LRU index: recency stamp -> key. Stamps are unique per shard.
    lru: BTreeMap<u64, PlanKey>,
    /// Keys currently being compiled by some thread.
    inflight: BTreeSet<PlanKey>,
    tick: u64,
    bytes: usize,
}

impl ShardState {
    fn touch(&mut self, key: PlanKey) -> Option<Arc<CompiledPlan>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.plans.get_mut(&key)?;
        self.lru.remove(&entry.stamp);
        entry.stamp = tick;
        self.lru.insert(tick, key);
        Some(entry.plan.clone())
    }

    /// Evicts least-recently-used entries (never `keep`) until the shard
    /// fits `budget`. Returns how many entries were evicted.
    fn evict_to_budget(&mut self, budget: usize, keep: PlanKey) -> u64 {
        let mut evicted = 0;
        while self.bytes > budget {
            let victim = match self
                .lru
                .iter()
                .map(|(s, k)| (*s, *k))
                .find(|(_, k)| *k != keep)
            {
                Some(v) => v,
                None => break,
            };
            self.lru.remove(&victim.0);
            if let Some(e) = self.plans.remove(&victim.1) {
                self.bytes = self.bytes.saturating_sub(e.bytes);
            }
            evicted += 1;
        }
        evicted
    }
}

struct Shard {
    state: Mutex<ShardState>,
    /// Signalled when an in-flight compile finishes (success or failure).
    compiled: Condvar,
}

/// The sharded, memory-budgeted, generation-keyed plan cache. See the
/// module docs for the design.
pub struct SharedPlanCache {
    shards: Vec<Shard>,
    budget_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    evictions: AtomicU64,
    uncacheable: AtomicU64,
}

impl SharedPlanCache {
    /// Creates a cache from `config` (shard count and budget are clamped
    /// to usable minimums).
    pub fn new(config: &CacheConfig) -> Self {
        let shards = config.shards.max(1);
        let budget_per_shard = (config.budget_bytes / shards).max(1);
        SharedPlanCache {
            shards: (0..shards)
                .map(|_| Shard {
                    state: Mutex::new(ShardState::default()),
                    compiled: Condvar::new(),
                })
                .collect(),
            budget_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard memory budget slice in bytes.
    pub fn budget_per_shard(&self) -> usize {
        self.budget_per_shard
    }

    /// Total configured memory budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.budget_per_shard * self.shards.len()
    }

    fn shard_of(&self, key: &PlanKey) -> &Shard {
        let idx = (key.mix() % self.shards.len() as u64) as usize;
        // idx < len by construction; the iterator fallback keeps the hot
        // path free of panicking accessors either way.
        self.shards
            .get(idx)
            .unwrap_or_else(|| match self.shards.first() {
                Some(s) => s,
                None => std::process::abort(), // new() guarantees >= 1 shard
            })
    }

    /// The cached plan for `(suite, net, batch)`, compiling on miss.
    ///
    /// The returned plan is always the one compiled against `suite`'s
    /// *current* generation: a racing [`Workflow::invalidate_plans`] or
    /// suite swap changes the key, never the meaning of a resident entry.
    ///
    /// # Errors
    ///
    /// Propagates [`PredictError`] from plan compilation (invalid
    /// requests fail here exactly as on the uncompiled path).
    pub fn get_or_compile(
        &self,
        suite: &Workflow,
        net: &Network,
        batch: usize,
    ) -> Result<Arc<CompiledPlan>, PredictError> {
        let key = PlanKey::of(suite, net, batch);
        let shard = self.shard_of(&key);
        {
            let mut st = lock_unpoisoned(&shard.state);
            loop {
                if let Some(plan) = st.touch(key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(plan);
                }
                if !st.inflight.contains(&key) {
                    st.inflight.insert(key);
                    break;
                }
                // Another thread is compiling this key: wait for it, then
                // re-check (its success puts the plan in the map; its
                // failure leaves us to retry the compile ourselves).
                st = wait_unpoisoned(&shard.compiled, st);
            }
        }
        // Compile outside the lock: other keys on this shard stay
        // servable while we work.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = CompiledPlan::compile(suite, net, batch);
        let mut st = lock_unpoisoned(&shard.state);
        st.inflight.remove(&key);
        let result = match compiled {
            Ok(plan) => {
                self.compiles.fetch_add(1, Ordering::Relaxed);
                let plan = Arc::new(plan);
                let bytes = plan.approx_bytes();
                if bytes > self.budget_per_shard {
                    // Larger than the whole shard slice: serving it
                    // uncached keeps the budget invariant exact.
                    self.uncacheable.fetch_add(1, Ordering::Relaxed);
                } else {
                    st.tick += 1;
                    let tick = st.tick;
                    st.plans.insert(
                        key,
                        Entry {
                            plan: plan.clone(),
                            stamp: tick,
                            bytes,
                        },
                    );
                    st.lru.insert(tick, key);
                    st.bytes += bytes;
                    let evicted = st.evict_to_budget(self.budget_per_shard, key);
                    if evicted > 0 {
                        self.evictions.fetch_add(evicted, Ordering::Relaxed);
                    }
                }
                Ok(plan)
            }
            Err(e) => Err(e),
        };
        drop(st);
        shard.compiled.notify_all();
        result
    }

    /// Drops every resident plan compiled against `generation` (a retired
    /// suite). Entries of other generations are untouched. Returns how
    /// many entries were purged.
    pub fn purge_generation(&self, generation: u64) -> usize {
        let mut purged = 0;
        for shard in &self.shards {
            let mut st = lock_unpoisoned(&shard.state);
            let victims: Vec<(u64, PlanKey)> = st
                .plans
                .iter()
                .filter(|(k, _)| k.generation == generation)
                .map(|(k, e)| (e.stamp, *k))
                .collect();
            for (stamp, key) in victims {
                st.lru.remove(&stamp);
                if let Some(e) = st.plans.remove(&key) {
                    st.bytes = st.bytes.saturating_sub(e.bytes);
                    purged += 1;
                }
            }
        }
        purged
    }

    /// Drops every resident plan.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut st = lock_unpoisoned(&shard.state);
            st.plans.clear();
            st.lru.clear();
            st.bytes = 0;
        }
    }

    /// Resident entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_unpoisoned(&s.state).plans.len())
            .sum()
    }

    /// Whether no plans are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Measured resident bytes across all shards (always within the
    /// configured budget).
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_unpoisoned(&s.state).bytes)
            .sum()
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
            entries: self.len(),
            bytes: self.bytes(),
        }
    }
}

/// The shared cache as a [`dnnperf_core::oracle::PlanSource`]: a
/// [`dnnperf_core::PredictionOracle`] built over it (the fleet
/// simulator's service-time oracle) draws from the same budgeted,
/// generation-keyed resident set as the prediction server, so capacity
/// studies and live serving share one working set — and the cache's
/// never-over-budget and never-stale invariants hold on that path too.
impl dnnperf_core::oracle::PlanSource for SharedPlanCache {
    fn plan_for(
        &self,
        suite: &Workflow,
        net: &Network,
        batch: usize,
    ) -> Result<Arc<CompiledPlan>, PredictError> {
        self.get_or_compile(suite, net, batch)
    }
}

impl std::fmt::Debug for SharedPlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "SharedPlanCache({} shards, {} entries, {}/{} bytes)",
            self.shards.len(),
            s.entries,
            s.bytes,
            self.budget_bytes()
        )
    }
}
