//! Deterministic fault injection for the serving transport and workers.
//!
//! `dnnperf_gpu::fault` made *profiling* failures reproducible: a seeded
//! plan decides, purely from stable keys, whether an attempt fails. This
//! module ports that philosophy up the stack to the serving layer, where
//! production failure modes live in the transport and the worker pool:
//!
//! * [`TransportFaultPlan`] + [`FaultyTransport`] — a seeded wrapper over
//!   any `Read + Write` stream that tears frames into byte-sized writes,
//!   corrupts payload bytes in transit, stalls before sending, or
//!   disconnects mid-frame (after the length prefix, before the payload —
//!   the worst case for a framed protocol). Decisions are keyed by
//!   `(seed, stream id, frame index)`, so a chaos run replays the exact
//!   same fault schedule on every machine and the injected-fault counters
//!   are byte-identical across runs.
//! * [`PanicPlan`] — a seeded schedule of worker panics keyed by the
//!   request admission sequence number, used by the server's supervision
//!   tests and the `chaos` bench bin to prove that a panicking worker
//!   never hangs a client and never shrinks the pool.
//!
//! Like `FaultPlan`, both plans are **bounded**: transport faults stop
//! firing after [`TransportFaultPlan::max_faulty_frames`] per stream, so
//! every client deterministically makes progress; panic draws are pure
//! rate draws over a finite admission sequence.
//!
//! Injection stays confined to test and bench surfaces: production code
//! never constructs these types (the `dnnperf-lint` oracle-isolation
//! note in `lint.toml` records the same policy for the profiler faults).

use std::io::{ErrorKind, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

// -- tiny deterministic hash (SplitMix64) -----------------------------------
//
// Local copy of the SplitMix64 finalizer (as in `dnnperf_sched::retry`):
// the serve crate must not depend on the testkit, and the hash is eight
// lines.

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform sample in `[0, 1)` from a hash (top 53 bits).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A single injected transport fault, scoped to one protocol frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// Every read/write of this frame moves at most one byte per call
    /// (a torn frame: exercises partial-I/O handling on both sides).
    Torn,
    /// One deterministically chosen payload byte is flipped in transit.
    Corrupt,
    /// The sender stalls for the plan's delay before the frame starts.
    Stall,
    /// The connection dies after the length prefix, before the payload —
    /// the receiver is left holding a torn frame that never completes.
    Disconnect,
}

/// Which transport fault kinds a plan may draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportFaultKinds {
    /// Allow [`TransportFault::Torn`].
    pub torn: bool,
    /// Allow [`TransportFault::Corrupt`].
    pub corrupt: bool,
    /// Allow [`TransportFault::Stall`].
    pub stall: bool,
    /// Allow [`TransportFault::Disconnect`].
    pub disconnect: bool,
}

impl TransportFaultKinds {
    /// Faults a correct peer recovers from transparently (torn + stall):
    /// under these, every request must still succeed.
    pub fn recoverable_only() -> Self {
        TransportFaultKinds {
            torn: true,
            corrupt: false,
            stall: true,
            disconnect: false,
        }
    }

    /// Everything at once (chaos testing).
    pub fn chaos() -> Self {
        TransportFaultKinds {
            torn: true,
            corrupt: true,
            stall: true,
            disconnect: true,
        }
    }

    fn enabled(&self) -> Vec<TransportFault> {
        let mut out = Vec::with_capacity(4);
        if self.torn {
            out.push(TransportFault::Torn);
        }
        if self.corrupt {
            out.push(TransportFault::Corrupt);
        }
        if self.stall {
            out.push(TransportFault::Stall);
        }
        if self.disconnect {
            out.push(TransportFault::Disconnect);
        }
        out
    }
}

/// A seeded, deterministic transport fault schedule.
///
/// [`TransportFaultPlan::decide`] is a pure function of the plan and
/// `(stream id, frame index)`: two runs with equal plans inject the
/// exact same faults at the exact same frames, on any machine.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportFaultPlan {
    /// Seed separating independent fault universes.
    pub seed: u64,
    /// Per-frame fault probability in `[0, 1]`.
    pub rate: f64,
    /// Which fault kinds may fire.
    pub kinds: TransportFaultKinds,
    /// Frames with index `>= max_faulty_frames` on a stream are always
    /// clean, bounding how long any one connection can misbehave.
    pub max_faulty_frames: u32,
    /// Delay injected by [`TransportFault::Stall`].
    pub stall_delay: Duration,
}

impl TransportFaultPlan {
    /// A recoverable-faults-only plan (torn frames and stalls) at `rate`.
    pub fn recoverable_only(seed: u64, rate: f64) -> Self {
        TransportFaultPlan {
            seed,
            rate,
            kinds: TransportFaultKinds::recoverable_only(),
            max_faulty_frames: u32::MAX,
            stall_delay: Duration::from_millis(2),
        }
    }

    /// An everything-can-happen plan at `rate` (corruption and
    /// disconnects too).
    pub fn chaos(seed: u64, rate: f64) -> Self {
        TransportFaultPlan {
            seed,
            rate,
            kinds: TransportFaultKinds::chaos(),
            max_faulty_frames: u32::MAX,
            stall_delay: Duration::from_millis(2),
        }
    }

    /// Hash key for one `(stream, frame)` cell.
    fn cell(&self, stream_id: u64, frame: u32) -> u64 {
        splitmix(
            splitmix(self.seed ^ 0x7a05_0f17)
                ^ stream_id.rotate_left(23)
                ^ (u64::from(frame) << 40),
        )
    }

    /// Decides the fault (if any) for frame number `frame` of stream
    /// `stream_id`. Deterministic in all arguments.
    pub fn decide(&self, stream_id: u64, frame: u32) -> Option<TransportFault> {
        if frame >= self.max_faulty_frames || self.rate <= 0.0 {
            return None;
        }
        let enabled = self.kinds.enabled();
        if enabled.is_empty() {
            return None;
        }
        let h = self.cell(stream_id, frame);
        if unit(h) >= self.rate {
            return None;
        }
        let pick = (splitmix(h ^ 0x9E37_79B9_7F4A_7C15) % enabled.len() as u64) as usize;
        enabled.get(pick).copied()
    }

    /// The byte position within a `len`-byte payload that
    /// [`TransportFault::Corrupt`] damages (deterministic per cell).
    pub fn corrupt_position(&self, stream_id: u64, frame: u32, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (splitmix(self.cell(stream_id, frame) ^ 0x00C0_FFEE) % len as u64) as usize
    }
}

/// Counters of faults a [`FaultyTransport`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportFaultStats {
    /// Frames delivered one byte per call.
    pub torn: u64,
    /// Frames with a flipped payload byte.
    pub corrupted: u64,
    /// Frames delayed by the stall fault.
    pub stalled: u64,
    /// Connections killed mid-frame.
    pub disconnected: u64,
}

impl TransportFaultStats {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.torn + self.corrupted + self.stalled + self.disconnected
    }

    /// Accumulates another stream's counters into this one.
    pub fn merge(&mut self, other: &TransportFaultStats) {
        self.torn += other.torn;
        self.corrupted += other.corrupted;
        self.stalled += other.stalled;
        self.disconnected += other.disconnected;
    }
}

/// A `Read + Write` wrapper that injects the faults a
/// [`TransportFaultPlan`] schedules, behind the exact traits
/// `read_frame`/`write_frame` already use — the protocol code under test
/// cannot tell it apart from a healthy stream.
///
/// Frame boundaries are tracked on the write side: `write_frame` ends
/// every frame with a `flush`, so the first `write` after a flush opens
/// frame `n+1` and draws that frame's fault. Within a frame, the first
/// write carries the 4-byte length prefix and the second carries the
/// payload, which is where corruption and mid-frame disconnects attach.
#[derive(Debug)]
pub struct FaultyTransport<S> {
    inner: S,
    plan: TransportFaultPlan,
    stream_id: u64,
    frame: u32,
    frame_open: bool,
    writes_in_frame: u32,
    active: Option<TransportFault>,
    dead: bool,
    stats: TransportFaultStats,
}

impl<S: Read + Write> FaultyTransport<S> {
    /// Wraps `inner` with the fault schedule `plan`. `stream_id`
    /// separates fault universes of concurrent connections — derive it
    /// deterministically (e.g. `client_id * 1000 + connection_seq`).
    pub fn new(inner: S, plan: TransportFaultPlan, stream_id: u64) -> Self {
        FaultyTransport {
            inner,
            plan,
            stream_id,
            frame: 0,
            frame_open: false,
            writes_in_frame: 0,
            active: None,
            dead: false,
            stats: TransportFaultStats::default(),
        }
    }

    /// The wrapped stream.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Counters of the faults injected so far on this stream.
    pub fn stats(&self) -> TransportFaultStats {
        self.stats
    }

    /// Whether a disconnect fault has killed this stream.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn open_frame(&mut self) {
        if self.frame_open {
            return;
        }
        self.frame_open = true;
        self.writes_in_frame = 0;
        self.active = self.plan.decide(self.stream_id, self.frame);
        match self.active {
            Some(TransportFault::Torn) => self.stats.torn += 1,
            Some(TransportFault::Corrupt) => self.stats.corrupted += 1,
            Some(TransportFault::Stall) => {
                self.stats.stalled += 1;
                std::thread::sleep(self.plan.stall_delay);
            }
            Some(TransportFault::Disconnect) => self.stats.disconnected += 1,
            None => {}
        }
        self.frame += 1;
    }
}

impl<S: Read + Write> Read for FaultyTransport<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(std::io::Error::new(
                ErrorKind::BrokenPipe,
                "injected disconnect",
            ));
        }
        // Tearing applies to reads of the *current* fault window too: one
        // byte per call exercises partial-read handling in read_frame.
        let cap = if self.active == Some(TransportFault::Torn) {
            1usize.min(buf.len())
        } else {
            buf.len()
        };
        match buf.get_mut(..cap) {
            Some(window) => self.inner.read(window),
            None => Ok(0),
        }
    }
}

impl<S: Read + Write> Write for FaultyTransport<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(std::io::Error::new(
                ErrorKind::BrokenPipe,
                "injected disconnect",
            ));
        }
        self.open_frame();
        self.writes_in_frame += 1;
        match self.active {
            // Mid-frame disconnect: the length prefix (write 1) goes out,
            // the payload never follows — the receiver holds a torn frame.
            Some(TransportFault::Disconnect) if self.writes_in_frame >= 2 => {
                self.dead = true;
                Err(std::io::Error::new(
                    ErrorKind::BrokenPipe,
                    "injected disconnect",
                ))
            }
            Some(TransportFault::Torn) => {
                let n = self.inner.write(buf.get(..1).unwrap_or(buf))?;
                Ok(n)
            }
            Some(TransportFault::Corrupt) if self.writes_in_frame == 2 => {
                // Flip one payload byte; the prefix stays intact so the
                // receiver gets a complete, garbled frame to reject.
                let mut damaged = buf.to_vec();
                let pos = self.plan.corrupt_position(
                    self.stream_id,
                    self.frame.wrapping_sub(1),
                    damaged.len(),
                );
                if let Some(b) = damaged.get_mut(pos) {
                    *b ^= 0x04;
                }
                let n = self.inner.write(&damaged)?;
                Ok(n)
            }
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.frame_open = false;
        if self.dead {
            return Err(std::io::Error::new(
                ErrorKind::BrokenPipe,
                "injected disconnect",
            ));
        }
        self.inner.flush()
    }
}

/// A seeded schedule of injected worker panics, keyed by the request
/// admission sequence number.
///
/// The admitted count is deterministic for a fixed workload, so the
/// *number* of panics fired — and therefore the server's `panics` /
/// `respawns` counters — replays exactly across runs with the same seed
/// even though which physical worker thread serves which request is not.
#[derive(Debug, Clone, PartialEq)]
pub struct PanicPlan {
    /// Seed separating independent panic universes.
    pub seed: u64,
    /// Per-request panic probability in `[0, 1]`.
    pub rate: f64,
}

impl PanicPlan {
    /// A plan firing at `rate`.
    pub fn new(seed: u64, rate: f64) -> Self {
        PanicPlan { seed, rate }
    }

    /// Whether the worker serving admission sequence number `seq` should
    /// panic. Pure in `(self, seq)`.
    pub fn fires(&self, seq: u64) -> bool {
        if self.rate <= 0.0 {
            return false;
        }
        unit(splitmix(self.seed ^ 0xBAD_C0DE ^ seq.rotate_left(31))) < self.rate
    }

    /// How many of the first `admitted` sequence numbers fire (the
    /// deterministic expectation for the server's `panics` counter).
    pub fn fires_among(&self, admitted: u64) -> u64 {
        (0..admitted).filter(|&s| self.fires(s)).count() as u64
    }
}

/// The panic payload injected workers unwind with — typed so supervision
/// tests can tell an injected crash apart from a genuine bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedWorkerPanic {
    /// The admission sequence number whose service crashed.
    pub seq: u64,
}

/// Monotonic source of deterministic-enough stream ids for tests that
/// wrap ad-hoc streams without a client/connection numbering scheme.
pub(crate) static NEXT_STREAM_ID: AtomicU64 = AtomicU64::new(0);

/// A fresh stream id (process-unique; fine for unit tests, benches
/// should derive ids from `(client, connection)` instead).
pub fn next_stream_id() -> u64 {
    NEXT_STREAM_ID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// An in-memory duplex-ish stream: reads from `input`, writes to
    /// `output`.
    struct Loop {
        input: Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Read for Loop {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Loop {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.output.write(buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn looped(input: Vec<u8>) -> Loop {
        Loop {
            input: Cursor::new(input),
            output: Vec::new(),
        }
    }

    #[test]
    fn decisions_are_deterministic_and_bounded() {
        let p = TransportFaultPlan::chaos(42, 0.5);
        let q = TransportFaultPlan::chaos(42, 0.5);
        for stream in 0..16u64 {
            for frame in 0..32 {
                assert_eq!(p.decide(stream, frame), q.decide(stream, frame));
            }
        }
        let mut bounded = TransportFaultPlan::chaos(42, 1.0);
        bounded.max_faulty_frames = 3;
        assert!(bounded.decide(7, 2).is_some(), "rate 1.0 under the bound");
        assert_eq!(bounded.decide(7, 3), None, "bounded depth goes clean");
        assert_eq!(TransportFaultPlan::chaos(1, 0.0).decide(0, 0), None);
    }

    #[test]
    fn different_seeds_or_streams_decorrelate() {
        let p = TransportFaultPlan::chaos(1, 0.5);
        let q = TransportFaultPlan::chaos(2, 0.5);
        assert!((0..64).any(|f| p.decide(0, f) != q.decide(0, f)));
        assert!((0..64).any(|f| p.decide(0, f) != p.decide(1, f)));
    }

    #[test]
    fn recoverable_only_never_corrupts_or_disconnects() {
        let p = TransportFaultPlan::recoverable_only(11, 1.0);
        for f in 0..200 {
            match p.decide(3, f) {
                Some(TransportFault::Corrupt) | Some(TransportFault::Disconnect) => {
                    panic!("recoverable-only plan drew a destructive fault")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn torn_writes_still_deliver_every_byte() {
        let mut plan = TransportFaultPlan::recoverable_only(0, 1.0);
        plan.kinds = TransportFaultKinds {
            torn: true,
            corrupt: false,
            stall: false,
            disconnect: false,
        };
        let mut t = FaultyTransport::new(looped(Vec::new()), plan, 1);
        crate::protocol::write_frame(&mut t, "predict\tt\tn\t8").unwrap();
        assert!(t.stats().torn >= 1);
        let written = t.inner.output.clone();
        // The receiver reassembles the identical frame.
        let mut r = Cursor::new(written);
        let got = crate::protocol::read_frame(&mut r).unwrap().unwrap();
        assert_eq!(got, "predict\tt\tn\t8");
    }

    #[test]
    fn corruption_flips_exactly_one_payload_byte() {
        let mut plan = TransportFaultPlan::chaos(9, 1.0);
        plan.kinds = TransportFaultKinds {
            torn: false,
            corrupt: true,
            stall: false,
            disconnect: false,
        };
        let payload = "predict\ttenant\tnet\t8";
        let mut t = FaultyTransport::new(looped(Vec::new()), plan, 2);
        crate::protocol::write_frame(&mut t, payload).unwrap();
        assert_eq!(t.stats().corrupted, 1);
        let written = t.inner.output.clone();
        // Prefix intact, exactly one payload byte differs.
        assert_eq!(&written[..4], &(payload.len() as u32).to_be_bytes()[..]);
        let diffs = written[4..]
            .iter()
            .zip(payload.as_bytes())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn disconnect_kills_after_the_prefix() {
        let mut plan = TransportFaultPlan::chaos(5, 1.0);
        plan.kinds = TransportFaultKinds {
            torn: false,
            corrupt: false,
            stall: false,
            disconnect: true,
        };
        let mut t = FaultyTransport::new(looped(Vec::new()), plan, 3);
        let err = crate::protocol::write_frame(&mut t, "stats").unwrap_err();
        assert!(matches!(err, crate::protocol::WireError::Io(_)));
        assert!(t.is_dead());
        assert_eq!(t.stats().disconnected, 1);
        // Only the 4-byte prefix escaped: the receiver sees a torn frame.
        assert_eq!(t.inner.output.len(), 4);
        // Every later operation fails fast.
        let mut buf = [0u8; 1];
        assert!(t.read(&mut buf).is_err());
        assert!(t.write(b"x").is_err());
    }

    #[test]
    fn clean_plan_is_a_transparent_wrapper() {
        let plan = TransportFaultPlan::chaos(0, 0.0);
        let mut t = FaultyTransport::new(looped(Vec::new()), plan, 0);
        crate::protocol::write_frame(&mut t, "stats").unwrap();
        assert_eq!(t.stats().total(), 0);
        let mut r = Cursor::new(t.inner.output.clone());
        assert_eq!(
            crate::protocol::read_frame(&mut r).unwrap().unwrap(),
            "stats"
        );
    }

    #[test]
    fn panic_plan_is_deterministic_and_rate_bounded() {
        let p = PanicPlan::new(7, 0.25);
        let q = PanicPlan::new(7, 0.25);
        for seq in 0..512 {
            assert_eq!(p.fires(seq), q.fires(seq));
        }
        let fired = p.fires_among(400);
        assert!((50..180).contains(&fired), "fired {fired}/400 at rate 0.25");
        assert_eq!(PanicPlan::new(7, 0.0).fires_among(400), 0);
        assert_ne!(
            (0..64).map(|s| p.fires(s)).collect::<Vec<_>>(),
            (0..64)
                .map(|s| PanicPlan::new(8, 0.25).fires(s))
                .collect::<Vec<_>>(),
        );
    }
}
