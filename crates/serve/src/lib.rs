//! Multi-tenant prediction serving over a sharded compiled-plan cache.
//!
//! The paper's headline result — microsecond-latency, simulator-accurate
//! GPU time prediction — only pays off operationally if many consumers
//! can share one trained artifact. This crate is that serving layer,
//! built std-only like the rest of the workspace:
//!
//! * [`cache`] — [`cache::SharedPlanCache`], a lock-striped LRU cache of
//!   immutable [`dnnperf_core::CompiledPlan`]s under a configurable
//!   memory budget, keyed by `(suite generation, network fingerprint,
//!   batch)` so retrains can never serve stale plans;
//! * [`server`] — [`server::PredictionServer`], the in-process API:
//!   tenant registry, bounded admission queue with load shedding, and a
//!   batching worker pool;
//! * [`protocol`] — the length-prefixed TCP line protocol with
//!   bit-exact f64 transport;
//! * [`tcp`] — [`tcp::TcpServer`], the per-connection-thread front door
//!   (with idle and per-frame slowloris deadlines), and [`tcp::Client`],
//!   a blocking client with deterministic-backoff retry;
//! * [`fault`] — seeded transport fault injection and worker-panic
//!   schedules for chaos testing, confined to test/bench surfaces.
//!
//! The serving layer is chaos-hardened: requests carry deadlines,
//! panicking workers are supervised (waiters answered, pool respawned),
//! and every submitted request receives exactly one terminal response —
//! see the failure model in [`server`]'s module docs.
//!
//! ```
//! use dnnperf_serve::{CacheConfig, PredictionServer, ServerConfig};
//! let server = PredictionServer::start(&ServerConfig {
//!     workers: 2,
//!     queue_depth: 64,
//!     max_batch: 8,
//!     cache: CacheConfig { shards: 4, budget_bytes: 1 << 20 },
//!     panic_plan: None,
//! });
//! assert_eq!(server.catalog_len(), 0);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod fault;
pub mod protocol;
pub mod server;
pub mod tcp;

pub use cache::{CacheConfig, CacheStats, PlanKey, SharedPlanCache};
pub use fault::{
    FaultyTransport, InjectedWorkerPanic, PanicPlan, TransportFault, TransportFaultKinds,
    TransportFaultPlan, TransportFaultStats,
};
pub use protocol::{
    read_frame, read_frame_deadline, write_frame, FrameRead, Request, Response, WireError,
    MAX_FRAME_BYTES,
};
pub use server::{Pending, PredictionServer, Reply, ServeError, ServerConfig, ServerStats};
pub use tcp::{Client, TcpConfig, TcpServer};
