//! The hand-rolled TCP line protocol of the prediction server.
//!
//! Zero-dependency framing: every message is a 4-byte big-endian length
//! prefix followed by that many bytes of UTF-8 payload. Requests are
//! tab-separated fields; responses are tab-separated fields whose first
//! field is a status word. Predicted seconds travel as the **hex of the
//! f64 bit pattern** (`f64::to_bits` rendered as 16 lowercase hex
//! digits), so a client decodes the exact double the server computed —
//! no decimal round-trip, bit-identical to an in-process call.
//!
//! Requests:
//!
//! ```text
//! predict \t <tenant> \t <network> \t <batch>
//! graceful \t <tenant> \t <network> \t <batch>
//! stats
//! ```
//!
//! Responses:
//!
//! ```text
//! ok \t <f64-bits-hex>                      (predict)
//! ok \t <f64-bits-hex> \t <degraded-notes>  (graceful; note count)
//! stats \t <key>=<value> ...                (stats)
//! overloaded                                (admission control shed this)
//! shutting-down                             (server is draining)
//! error \t <message>                        (anything else)
//! ```

use std::io::{Read, Write};

/// Upper bound on a frame payload. Requests and responses are one short
/// line; anything bigger is a corrupt or hostile stream.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Strict prediction (`Workflow::predict` semantics).
    Predict {
        /// Tenant (registered suite) name.
        tenant: String,
        /// Network name in the server catalog.
        network: String,
        /// Batch size.
        batch: usize,
    },
    /// Graceful-ladder prediction (`Workflow::predict_graceful`).
    Graceful {
        /// Tenant (registered suite) name.
        tenant: String,
        /// Network name in the server catalog.
        network: String,
        /// Batch size.
        batch: usize,
    },
    /// Server and cache counters.
    Stats,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A prediction in seconds; `degraded_notes` is `Some(n)` for
    /// graceful requests (n = number of fallback notes).
    Ok {
        /// Predicted seconds.
        seconds: f64,
        /// `Some(note count)` for graceful predictions.
        degraded_notes: Option<usize>,
    },
    /// Tab-separated `key=value` counter pairs.
    Stats(Vec<(String, u64)>),
    /// Admission control shed the request.
    Overloaded,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// The request failed (unknown tenant/network, invalid batch, ...).
    Error(String),
}

/// Errors reading, writing or parsing protocol frames.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// A frame declared a payload over [`MAX_FRAME_BYTES`].
    FrameTooLarge(usize),
    /// The payload was not valid UTF-8 or not a well-formed message.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::FrameTooLarge(n) => {
                write!(
                    f,
                    "frame of {n} bytes exceeds the {MAX_FRAME_BYTES} byte cap"
                )
            }
            WireError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] when `payload` exceeds the cap, or the
/// underlying I/O error.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> Result<(), WireError> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge(bytes.len()));
    }
    let len = (bytes.len() as u32).to_be_bytes();
    w.write_all(&len)?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF at
/// a frame boundary (the peer closed the connection).
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] for an oversized declared length,
/// [`WireError::Malformed`] for non-UTF-8 payloads, or the underlying
/// I/O error (including EOF mid-frame).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<String>, WireError> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(mut n) => {
            while n < 4 {
                let more = r.read(len_buf.get_mut(n..).unwrap_or(&mut []))?;
                if more == 0 {
                    return Err(WireError::Malformed("EOF inside length prefix".into()));
                }
                n += more;
            }
        }
        Err(e) => return Err(WireError::Io(e)),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| WireError::Malformed("payload is not UTF-8".into()))
}

fn parse_batch(s: &str) -> Result<usize, WireError> {
    s.parse()
        .map_err(|_| WireError::Malformed(format!("bad batch {s:?}")))
}

impl Request {
    /// Renders the request as a frame payload.
    pub fn format(&self) -> String {
        match self {
            Request::Predict {
                tenant,
                network,
                batch,
            } => format!("predict\t{tenant}\t{network}\t{batch}"),
            Request::Graceful {
                tenant,
                network,
                batch,
            } => format!("graceful\t{tenant}\t{network}\t{batch}"),
            Request::Stats => "stats".to_string(),
        }
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for unknown verbs or wrong field counts.
    pub fn parse(line: &str) -> Result<Self, WireError> {
        let mut fields = line.split('\t');
        let verb = fields.next().unwrap_or("");
        let rest: Vec<&str> = fields.collect();
        match (verb, rest.as_slice()) {
            ("predict", [tenant, network, batch]) => Ok(Request::Predict {
                tenant: (*tenant).to_string(),
                network: (*network).to_string(),
                batch: parse_batch(batch)?,
            }),
            ("graceful", [tenant, network, batch]) => Ok(Request::Graceful {
                tenant: (*tenant).to_string(),
                network: (*network).to_string(),
                batch: parse_batch(batch)?,
            }),
            ("stats", []) => Ok(Request::Stats),
            _ => Err(WireError::Malformed(format!("bad request {line:?}"))),
        }
    }
}

impl Response {
    /// Renders the response as a frame payload.
    pub fn format(&self) -> String {
        match self {
            Response::Ok {
                seconds,
                degraded_notes: None,
            } => format!("ok\t{:016x}", seconds.to_bits()),
            Response::Ok {
                seconds,
                degraded_notes: Some(n),
            } => format!("ok\t{:016x}\t{n}", seconds.to_bits()),
            Response::Stats(pairs) => {
                let mut out = String::from("stats");
                for (k, v) in pairs {
                    out.push('\t');
                    out.push_str(k);
                    out.push('=');
                    out.push_str(&v.to_string());
                }
                out
            }
            Response::Overloaded => "overloaded".to_string(),
            Response::ShuttingDown => "shutting-down".to_string(),
            Response::Error(m) => format!("error\t{}", m.replace(['\t', '\n'], " ")),
        }
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for unknown status words or bad fields.
    pub fn parse(line: &str) -> Result<Self, WireError> {
        let mut fields = line.split('\t');
        let status = fields.next().unwrap_or("");
        let rest: Vec<&str> = fields.collect();
        match (status, rest.as_slice()) {
            ("ok", [bits]) => Ok(Response::Ok {
                seconds: parse_bits(bits)?,
                degraded_notes: None,
            }),
            ("ok", [bits, notes]) => Ok(Response::Ok {
                seconds: parse_bits(bits)?,
                degraded_notes: Some(
                    notes
                        .parse()
                        .map_err(|_| WireError::Malformed(format!("bad note count {notes:?}")))?,
                ),
            }),
            ("stats", pairs) => {
                let mut out = Vec::with_capacity(pairs.len());
                for p in pairs {
                    let (k, v) = p
                        .split_once('=')
                        .ok_or_else(|| WireError::Malformed(format!("bad stat {p:?}")))?;
                    let v = v
                        .parse()
                        .map_err(|_| WireError::Malformed(format!("bad stat {p:?}")))?;
                    out.push((k.to_string(), v));
                }
                Ok(Response::Stats(out))
            }
            ("overloaded", []) => Ok(Response::Overloaded),
            ("shutting-down", []) => Ok(Response::ShuttingDown),
            ("error", [m]) => Ok(Response::Error((*m).to_string())),
            _ => Err(WireError::Malformed(format!("bad response {line:?}"))),
        }
    }
}

fn parse_bits(s: &str) -> Result<f64, WireError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| WireError::Malformed(format!("bad f64 bits {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Predict {
                tenant: "t".into(),
                network: "resnet18".into(),
                batch: 32,
            },
            Request::Graceful {
                tenant: "other".into(),
                network: "vgg11".into(),
                batch: 1,
            },
            Request::Stats,
        ] {
            assert_eq!(Request::parse(&req.format()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let exotic = f64::from_bits(0x3fb9_9999_9999_999a); // 0.1, not decimal-representable
        for resp in [
            Response::Ok {
                seconds: exotic,
                degraded_notes: None,
            },
            Response::Ok {
                seconds: 1.25e-3,
                degraded_notes: Some(4),
            },
            Response::Stats(vec![("hits".into(), 7), ("misses".into(), 2)]),
            Response::Overloaded,
            Response::ShuttingDown,
            Response::Error("no such tenant".into()),
        ] {
            let parsed = Response::parse(&resp.format()).unwrap();
            match (&parsed, &resp) {
                (Response::Ok { seconds: a, .. }, Response::Ok { seconds: b, .. }) => {
                    assert_eq!(a.to_bits(), b.to_bits())
                }
                _ => assert_eq!(parsed, resp),
            }
        }
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "predict\tt\tn\t8").unwrap();
        write_frame(&mut buf, "stats").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "predict\tt\tn\t8");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "stats");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_are_rejected_on_both_sides() {
        let big = "x".repeat(MAX_FRAME_BYTES + 1);
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &big),
            Err(WireError::FrameTooLarge(_))
        ));
        // A hostile length prefix is rejected before allocating.
        let hostile = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes().to_vec();
        let mut r = std::io::Cursor::new(hostile);
        assert!(matches!(
            read_frame(&mut r),
            Err(WireError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Request::parse("predict\tonly-two\tfields").is_err());
        assert!(Request::parse("frobnicate").is_err());
        assert!(Request::parse("predict\tt\tn\tnot-a-number").is_err());
        assert!(Response::parse("ok\tzznothex").is_err());
        assert!(Response::parse("").is_err());
    }
}
