//! The hand-rolled TCP line protocol of the prediction server.
//!
//! Zero-dependency framing: every message is a 4-byte big-endian length
//! prefix followed by that many bytes of UTF-8 payload. Requests are
//! tab-separated fields; responses are tab-separated fields whose first
//! field is a status word. Predicted seconds travel as the **hex of the
//! f64 bit pattern** (`f64::to_bits` rendered as 16 lowercase hex
//! digits), so a client decodes the exact double the server computed —
//! no decimal round-trip, bit-identical to an in-process call.
//!
//! Requests (the trailing `<deadline-ms>` field is optional; its absence
//! means "no deadline", so pre-deadline clients keep working unchanged):
//!
//! ```text
//! predict \t <tenant> \t <network> \t <batch> [\t <deadline-ms>]
//! graceful \t <tenant> \t <network> \t <batch> [\t <deadline-ms>]
//! stats
//! ```
//!
//! Responses:
//!
//! ```text
//! ok \t <f64-bits-hex>                      (predict)
//! ok \t <f64-bits-hex> \t <degraded-notes>  (graceful; note count)
//! stats \t <key>=<value> ...                (stats)
//! overloaded                                (admission control shed this)
//! deadline-exceeded                         (expired before service)
//! shutting-down                             (server is draining)
//! internal \t <message>                     (worker crashed mid-service)
//! error \t <message>                        (anything else)
//! ```
//!
//! Reading is hardened against slow and hostile peers: [`read_frame`]
//! survives torn reads (`Interrupted`, short reads inside the prefix),
//! and [`read_frame_deadline`] additionally bounds the total time a
//! single frame may take to arrive — the slowloris guard the server's
//! connection loop runs on.

use dnnperf_sched::Clock;
use std::io::{ErrorKind, Read, Write};
use std::time::Duration;

/// Upper bound on a frame payload. Requests and responses are one short
/// line; anything bigger is a corrupt or hostile stream.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Strict prediction (`Workflow::predict` semantics).
    Predict {
        /// Tenant (registered suite) name.
        tenant: String,
        /// Network name in the server catalog.
        network: String,
        /// Batch size.
        batch: usize,
        /// Time budget from submission, in milliseconds. `None` waits
        /// indefinitely; `Some(0)` demands immediate service.
        deadline_ms: Option<u64>,
    },
    /// Graceful-ladder prediction (`Workflow::predict_graceful`).
    Graceful {
        /// Tenant (registered suite) name.
        tenant: String,
        /// Network name in the server catalog.
        network: String,
        /// Batch size.
        batch: usize,
        /// Time budget from submission, in milliseconds (see
        /// [`Request::Predict::deadline_ms`]).
        deadline_ms: Option<u64>,
    },
    /// Server and cache counters.
    Stats,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A prediction in seconds; `degraded_notes` is `Some(n)` for
    /// graceful requests (n = number of fallback notes).
    Ok {
        /// Predicted seconds.
        seconds: f64,
        /// `Some(note count)` for graceful predictions.
        degraded_notes: Option<usize>,
    },
    /// Tab-separated `key=value` counter pairs.
    Stats(Vec<(String, u64)>),
    /// Admission control shed the request.
    Overloaded,
    /// The request's deadline expired before it could be served.
    DeadlineExceeded,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// A worker crashed while serving the request; the supervisor
    /// answered on its behalf. The request may be retried.
    Internal(String),
    /// The request failed (unknown tenant/network, invalid batch, ...).
    Error(String),
}

/// Errors reading, writing or parsing protocol frames.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// A frame declared a payload over [`MAX_FRAME_BYTES`].
    FrameTooLarge(usize),
    /// The payload was not valid UTF-8 or not a well-formed message.
    Malformed(String),
    /// A retrying client spent its whole retry budget on transient
    /// transport faults; `last` is the error of the final attempt.
    Exhausted {
        /// Total attempts made before giving up.
        attempts: u32,
        /// The final attempt's failure.
        last: Box<WireError>,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::FrameTooLarge(n) => {
                write!(
                    f,
                    "frame of {n} bytes exceeds the {MAX_FRAME_BYTES} byte cap"
                )
            }
            WireError::Malformed(m) => write!(f, "malformed message: {m}"),
            WireError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] when `payload` exceeds the cap, or the
/// underlying I/O error.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> Result<(), WireError> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge(bytes.len()));
    }
    let len = (bytes.len() as u32).to_be_bytes();
    w.write_all(&len)?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF at
/// a frame boundary (the peer closed the connection).
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] for an oversized declared length,
/// [`WireError::Malformed`] for non-UTF-8 payloads, or the underlying
/// I/O error (including EOF mid-frame).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<String>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut have;
    loop {
        match r.read(&mut len_buf) {
            Ok(0) => return Ok(None),
            Ok(n) => {
                have = n;
                break;
            }
            // A signal mid-read is not a dead connection: retry, exactly
            // as `read_exact` would.
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    while have < 4 {
        match r.read(len_buf.get_mut(have..).unwrap_or(&mut [])) {
            Ok(0) => return Err(WireError::Malformed("EOF inside length prefix".into())),
            Ok(n) => have += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| WireError::Malformed("payload is not UTF-8".into()))
}

/// Outcome of [`read_frame_deadline`].
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame payload.
    Frame(String),
    /// Clean EOF at a frame boundary: the peer hung up.
    Closed,
    /// No byte of a new frame arrived before the reader's timeout tick.
    /// The caller owns idle policy (stop flags, per-connection idle
    /// deadlines) and decides whether to poll again or hang up.
    Idle,
    /// A frame started arriving but did not complete within the budget —
    /// a torn frame or a slowloris peer. Drop the connection.
    TimedOut,
}

/// Reads one frame with a bound on how long the frame may take to
/// arrive once its first byte lands.
///
/// This is the server-side [`read_frame`]: the plain variant trusts the
/// peer to eventually finish every frame it starts, which lets a slow or
/// hostile client pin a connection thread forever (slowloris). Here the
/// idle wait (before any byte) is unbudgeted — the connection loop
/// accounts idle time across calls via [`FrameRead::Idle`] — but once a
/// frame starts, `WouldBlock`/`TimedOut`/`Interrupted` stalls only
/// retry while `clock` says less than `frame_timeout` has elapsed.
///
/// `retry_pause` is slept between in-frame retries; pass
/// `Duration::ZERO` for sockets with their own read timeout (the socket
/// already paces the loop) and a small positive pause for readers that
/// fail fast, so a fake clock advances deterministically in tests.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`], [`WireError::Malformed`] (EOF inside a
/// frame, non-UTF-8 payload), or a non-retriable I/O error.
pub fn read_frame_deadline<R: Read>(
    r: &mut R,
    clock: &dyn Clock,
    frame_timeout: Duration,
    retry_pause: Duration,
) -> Result<FrameRead, WireError> {
    let mut len_buf = [0u8; 4];
    let mut have;
    // Idle phase: no frame has started, so no frame budget applies.
    loop {
        match r.read(&mut len_buf) {
            Ok(0) => return Ok(FrameRead::Closed),
            Ok(n) => {
                have = n;
                break;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Ok(FrameRead::Idle)
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    // First byte landed: the whole frame must arrive within the budget.
    let started = clock.now();
    while have < 4 {
        match r.read(len_buf.get_mut(have..).unwrap_or(&mut [])) {
            Ok(0) => return Err(WireError::Malformed("EOF inside length prefix".into())),
            Ok(n) => have += n,
            Err(e) => match in_frame_stall(&e, clock, started, frame_timeout, retry_pause) {
                Stall::Retry => {}
                Stall::Expired => return Ok(FrameRead::TimedOut),
                Stall::Fatal => return Err(WireError::Io(e)),
            },
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match r.read(payload.get_mut(filled..).unwrap_or(&mut [])) {
            Ok(0) => return Err(WireError::Malformed("EOF inside payload".into())),
            Ok(n) => filled += n,
            Err(e) => match in_frame_stall(&e, clock, started, frame_timeout, retry_pause) {
                Stall::Retry => {}
                Stall::Expired => return Ok(FrameRead::TimedOut),
                Stall::Fatal => return Err(WireError::Io(e)),
            },
        }
    }
    String::from_utf8(payload)
        .map(FrameRead::Frame)
        .map_err(|_| WireError::Malformed("payload is not UTF-8".into()))
}

/// How [`read_frame_deadline`] should react to a mid-frame read error.
enum Stall {
    Retry,
    Expired,
    Fatal,
}

fn in_frame_stall(
    e: &std::io::Error,
    clock: &dyn Clock,
    started: Duration,
    budget: Duration,
    pause: Duration,
) -> Stall {
    let retriable = matches!(
        e.kind(),
        ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
    );
    if !retriable {
        return Stall::Fatal;
    }
    if clock.now().saturating_sub(started) >= budget {
        return Stall::Expired;
    }
    // Interrupted means "try again right now"; the blocking kinds pace
    // themselves on real sockets (read timeout) and on `pause` otherwise.
    if e.kind() != ErrorKind::Interrupted && !pause.is_zero() {
        clock.sleep(pause);
    }
    Stall::Retry
}

fn parse_batch(s: &str) -> Result<usize, WireError> {
    s.parse()
        .map_err(|_| WireError::Malformed(format!("bad batch {s:?}")))
}

fn parse_deadline(s: &str) -> Result<u64, WireError> {
    s.parse()
        .map_err(|_| WireError::Malformed(format!("bad deadline {s:?}")))
}

impl Request {
    /// Renders the request as a frame payload.
    pub fn format(&self) -> String {
        let line = |verb: &str, tenant: &str, network: &str, batch: usize, dl: Option<u64>| {
            let mut out = format!("{verb}\t{tenant}\t{network}\t{batch}");
            if let Some(ms) = dl {
                out.push('\t');
                out.push_str(&ms.to_string());
            }
            out
        };
        match self {
            Request::Predict {
                tenant,
                network,
                batch,
                deadline_ms,
            } => line("predict", tenant, network, *batch, *deadline_ms),
            Request::Graceful {
                tenant,
                network,
                batch,
                deadline_ms,
            } => line("graceful", tenant, network, *batch, *deadline_ms),
            Request::Stats => "stats".to_string(),
        }
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for unknown verbs or wrong field counts.
    pub fn parse(line: &str) -> Result<Self, WireError> {
        let mut fields = line.split('\t');
        let verb = fields.next().unwrap_or("");
        let rest: Vec<&str> = fields.collect();
        match (verb, rest.as_slice()) {
            ("predict", [tenant, network, batch]) => Ok(Request::Predict {
                tenant: (*tenant).to_string(),
                network: (*network).to_string(),
                batch: parse_batch(batch)?,
                deadline_ms: None,
            }),
            ("predict", [tenant, network, batch, dl]) => Ok(Request::Predict {
                tenant: (*tenant).to_string(),
                network: (*network).to_string(),
                batch: parse_batch(batch)?,
                deadline_ms: Some(parse_deadline(dl)?),
            }),
            ("graceful", [tenant, network, batch]) => Ok(Request::Graceful {
                tenant: (*tenant).to_string(),
                network: (*network).to_string(),
                batch: parse_batch(batch)?,
                deadline_ms: None,
            }),
            ("graceful", [tenant, network, batch, dl]) => Ok(Request::Graceful {
                tenant: (*tenant).to_string(),
                network: (*network).to_string(),
                batch: parse_batch(batch)?,
                deadline_ms: Some(parse_deadline(dl)?),
            }),
            ("stats", []) => Ok(Request::Stats),
            _ => Err(WireError::Malformed(format!("bad request {line:?}"))),
        }
    }
}

impl Response {
    /// Renders the response as a frame payload.
    pub fn format(&self) -> String {
        match self {
            Response::Ok {
                seconds,
                degraded_notes: None,
            } => format!("ok\t{:016x}", seconds.to_bits()),
            Response::Ok {
                seconds,
                degraded_notes: Some(n),
            } => format!("ok\t{:016x}\t{n}", seconds.to_bits()),
            Response::Stats(pairs) => {
                let mut out = String::from("stats");
                for (k, v) in pairs {
                    out.push('\t');
                    out.push_str(k);
                    out.push('=');
                    out.push_str(&v.to_string());
                }
                out
            }
            Response::Overloaded => "overloaded".to_string(),
            Response::DeadlineExceeded => "deadline-exceeded".to_string(),
            Response::ShuttingDown => "shutting-down".to_string(),
            Response::Internal(m) => format!("internal\t{}", m.replace(['\t', '\n'], " ")),
            Response::Error(m) => format!("error\t{}", m.replace(['\t', '\n'], " ")),
        }
    }

    /// Parses a frame payload.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] for unknown status words or bad fields.
    pub fn parse(line: &str) -> Result<Self, WireError> {
        let mut fields = line.split('\t');
        let status = fields.next().unwrap_or("");
        let rest: Vec<&str> = fields.collect();
        match (status, rest.as_slice()) {
            ("ok", [bits]) => Ok(Response::Ok {
                seconds: parse_bits(bits)?,
                degraded_notes: None,
            }),
            ("ok", [bits, notes]) => Ok(Response::Ok {
                seconds: parse_bits(bits)?,
                degraded_notes: Some(
                    notes
                        .parse()
                        .map_err(|_| WireError::Malformed(format!("bad note count {notes:?}")))?,
                ),
            }),
            ("stats", pairs) => {
                let mut out = Vec::with_capacity(pairs.len());
                for p in pairs {
                    let (k, v) = p
                        .split_once('=')
                        .ok_or_else(|| WireError::Malformed(format!("bad stat {p:?}")))?;
                    let v = v
                        .parse()
                        .map_err(|_| WireError::Malformed(format!("bad stat {p:?}")))?;
                    out.push((k.to_string(), v));
                }
                Ok(Response::Stats(out))
            }
            ("overloaded", []) => Ok(Response::Overloaded),
            ("deadline-exceeded", []) => Ok(Response::DeadlineExceeded),
            ("shutting-down", []) => Ok(Response::ShuttingDown),
            ("internal", [m]) => Ok(Response::Internal((*m).to_string())),
            ("error", [m]) => Ok(Response::Error((*m).to_string())),
            _ => Err(WireError::Malformed(format!("bad response {line:?}"))),
        }
    }
}

fn parse_bits(s: &str) -> Result<f64, WireError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| WireError::Malformed(format!("bad f64 bits {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Predict {
                tenant: "t".into(),
                network: "resnet18".into(),
                batch: 32,
                deadline_ms: None,
            },
            Request::Predict {
                tenant: "t".into(),
                network: "resnet18".into(),
                batch: 32,
                deadline_ms: Some(250),
            },
            Request::Graceful {
                tenant: "other".into(),
                network: "vgg11".into(),
                batch: 1,
                deadline_ms: Some(0),
            },
            Request::Stats,
        ] {
            assert_eq!(Request::parse(&req.format()).unwrap(), req);
        }
    }

    #[test]
    fn legacy_four_field_requests_parse_without_deadline() {
        // Pre-deadline clients send no fifth field; that must keep
        // meaning "no deadline".
        assert_eq!(
            Request::parse("predict\tt\tn\t8").unwrap(),
            Request::Predict {
                tenant: "t".into(),
                network: "n".into(),
                batch: 8,
                deadline_ms: None,
            }
        );
        assert!(Request::parse("predict\tt\tn\t8\tnot-ms").is_err());
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let exotic = f64::from_bits(0x3fb9_9999_9999_999a); // 0.1, not decimal-representable
        for resp in [
            Response::Ok {
                seconds: exotic,
                degraded_notes: None,
            },
            Response::Ok {
                seconds: 1.25e-3,
                degraded_notes: Some(4),
            },
            Response::Stats(vec![("hits".into(), 7), ("misses".into(), 2)]),
            Response::Overloaded,
            Response::DeadlineExceeded,
            Response::ShuttingDown,
            Response::Internal("worker panicked".into()),
            Response::Error("no such tenant".into()),
        ] {
            let parsed = Response::parse(&resp.format()).unwrap();
            match (&parsed, &resp) {
                (Response::Ok { seconds: a, .. }, Response::Ok { seconds: b, .. }) => {
                    assert_eq!(a.to_bits(), b.to_bits())
                }
                _ => assert_eq!(parsed, resp),
            }
        }
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "predict\tt\tn\t8").unwrap();
        write_frame(&mut buf, "stats").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "predict\tt\tn\t8");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "stats");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_are_rejected_on_both_sides() {
        let big = "x".repeat(MAX_FRAME_BYTES + 1);
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &big),
            Err(WireError::FrameTooLarge(_))
        ));
        // A hostile length prefix is rejected before allocating.
        let hostile = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes().to_vec();
        let mut r = std::io::Cursor::new(hostile);
        assert!(matches!(
            read_frame(&mut r),
            Err(WireError::FrameTooLarge(_))
        ));
    }

    /// A reader scripted as a sequence of events: bytes delivered, or an
    /// error kind surfaced once.
    struct Scripted {
        events: std::collections::VecDeque<Result<Vec<u8>, ErrorKind>>,
        clock: std::sync::Arc<dnnperf_sched::RecordingClock>,
        tick: Duration,
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            // Each read costs one tick of fake wall time, like a socket
            // with a read timeout.
            self.clock.advance(self.tick);
            match self.events.pop_front() {
                Some(Ok(bytes)) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    Ok(n)
                }
                Some(Err(kind)) => Err(std::io::Error::new(kind, "scripted")),
                None => Ok(0),
            }
        }
    }

    fn scripted(
        events: Vec<Result<Vec<u8>, ErrorKind>>,
        tick: Duration,
    ) -> (Scripted, std::sync::Arc<dnnperf_sched::RecordingClock>) {
        let clock = std::sync::Arc::new(dnnperf_sched::RecordingClock::new());
        (
            Scripted {
                events: events.into_iter().collect(),
                clock: std::sync::Arc::clone(&clock),
                tick,
            },
            clock,
        )
    }

    fn framed(payload: &str) -> Vec<Vec<u8>> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        buf.into_iter().map(|b| vec![b]).collect()
    }

    #[test]
    fn read_frame_retries_interrupted_inside_the_prefix() {
        let frame = {
            let mut buf = Vec::new();
            write_frame(&mut buf, "stats").unwrap();
            buf
        };
        let mut events: Vec<Result<Vec<u8>, ErrorKind>> = Vec::new();
        // One byte, a signal, the rest of the prefix byte-by-byte with
        // more signals, then the payload.
        events.push(Err(ErrorKind::Interrupted));
        for b in &frame[..4] {
            events.push(Ok(vec![*b]));
            events.push(Err(ErrorKind::Interrupted));
        }
        events.push(Ok(frame[4..].to_vec()));
        let (mut r, _clock) = scripted(events, Duration::ZERO);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "stats");
    }

    #[test]
    fn deadline_reader_survives_torn_frames_within_budget() {
        // Every byte arrives separately with a WouldBlock between each:
        // the worst legitimate slow client. (A WouldBlock before the
        // first byte would be the idle phase, reported as `Idle`.)
        let mut events: Vec<Result<Vec<u8>, ErrorKind>> = Vec::new();
        for (i, b) in framed("predict\tt\tn\t8").into_iter().enumerate() {
            if i > 0 {
                events.push(Err(ErrorKind::WouldBlock));
            }
            events.push(Ok(b));
        }
        let (mut r, clock) = scripted(events, Duration::from_millis(10));
        let got = read_frame_deadline(
            &mut r,
            clock.as_ref(),
            Duration::from_secs(2),
            Duration::ZERO,
        )
        .unwrap();
        assert!(matches!(got, FrameRead::Frame(p) if p == "predict\tt\tn\t8"));
    }

    #[test]
    fn deadline_reader_times_out_a_slowloris_frame() {
        // One prefix byte lands, then the peer stalls forever.
        let mut events: Vec<Result<Vec<u8>, ErrorKind>> = vec![Ok(vec![0u8])];
        for _ in 0..100 {
            events.push(Err(ErrorKind::WouldBlock));
        }
        let (mut r, clock) = scripted(events, Duration::from_millis(100));
        let got = read_frame_deadline(
            &mut r,
            clock.as_ref(),
            Duration::from_millis(500),
            Duration::ZERO,
        )
        .unwrap();
        assert!(matches!(got, FrameRead::TimedOut));
    }

    #[test]
    fn deadline_reader_reports_idle_and_closed() {
        let (mut idle, clock) = scripted(vec![Err(ErrorKind::WouldBlock)], Duration::ZERO);
        assert!(matches!(
            read_frame_deadline(
                &mut idle,
                clock.as_ref(),
                Duration::from_secs(1),
                Duration::ZERO
            )
            .unwrap(),
            FrameRead::Idle
        ));
        let (mut closed, clock2) = scripted(vec![], Duration::ZERO);
        assert!(matches!(
            read_frame_deadline(
                &mut closed,
                clock2.as_ref(),
                Duration::from_secs(1),
                Duration::ZERO
            )
            .unwrap(),
            FrameRead::Closed
        ));
        // EOF mid-frame is a protocol error, not a timeout.
        let (mut torn, clock3) = scripted(vec![Ok(vec![0u8, 0u8])], Duration::ZERO);
        assert!(matches!(
            read_frame_deadline(
                &mut torn,
                clock3.as_ref(),
                Duration::from_secs(1),
                Duration::ZERO
            ),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn malformed_lines_error() {
        assert!(Request::parse("predict\tonly-two\tfields").is_err());
        assert!(Request::parse("frobnicate").is_err());
        assert!(Request::parse("predict\tt\tn\tnot-a-number").is_err());
        assert!(Response::parse("ok\tzznothex").is_err());
        assert!(Response::parse("").is_err());
    }
}
