//! The TCP front door: length-prefixed frames over per-connection
//! threads.
//!
//! [`TcpServer::serve`] binds a listener (pass port 0 for an ephemeral
//! port, read it back with [`TcpServer::addr`]) and spawns one accept
//! thread; each accepted connection gets its own handler thread that
//! loops `read_frame -> handle -> write_frame` until the client closes.
//! Shutdown is cooperative: a shared flag is set, the accept loop is
//! unblocked with a throwaway self-connection, and handler threads
//! notice the flag via a short socket read timeout — no thread is ever
//! killed mid-write, so every accepted request gets a response.
//!
//! Connections are hardened against slow and hostile peers
//! ([`TcpConfig`]): a per-connection **idle deadline** hangs up on
//! clients that go quiet between requests, and a per-frame **read
//! budget** bounds how long a started frame may dribble in — a
//! slowloris peer can pin a handler thread for at most one frame
//! budget. Both knobs read `DNNPERF_SERVE_*` environment overrides via
//! [`TcpConfig::from_env`].
//!
//! [`Client`] retries transient transport failures (connect refused,
//! resets, mid-request disconnects) with the scheduler's deterministic
//! backoff — predictions are read-only, so resending is always safe —
//! and gives up with the typed [`WireError::Exhausted`].

use crate::protocol::{
    read_frame, read_frame_deadline, write_frame, FrameRead, Request, Response, WireError,
};
use crate::server::{Pending, PredictionServer, Reply, ServeError};
use dnnperf_sched::sync::lock_unpoisoned;
use dnnperf_sched::{retry_with_backoff, Clock, RetryClass, RetryPolicy, SystemClock};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Transport hardening knobs for [`TcpServer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpConfig {
    /// Hang up on a connection that sends no frame for this long
    /// (`DNNPERF_SERVE_IDLE_MS`).
    pub idle_timeout: Duration,
    /// Maximum time a single frame may take to arrive once its first
    /// byte lands — the slowloris bound (`DNNPERF_SERVE_FRAME_MS`).
    pub frame_timeout: Duration,
    /// Socket read timeout: how often an idle read re-checks the
    /// shutdown flag and idle deadline (`DNNPERF_SERVE_POLL_MS`).
    pub poll: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            idle_timeout: Duration::from_secs(30),
            frame_timeout: Duration::from_secs(2),
            poll: Duration::from_millis(100),
        }
    }
}

impl TcpConfig {
    /// The defaults overridden by `DNNPERF_SERVE_IDLE_MS`,
    /// `DNNPERF_SERVE_FRAME_MS` and `DNNPERF_SERVE_POLL_MS` (all in
    /// milliseconds; unparsable values keep the default).
    pub fn from_env() -> Self {
        let ms = |var: &str, default: Duration| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .map(Duration::from_millis)
                .unwrap_or(default)
        };
        let d = TcpConfig::default();
        TcpConfig {
            idle_timeout: ms("DNNPERF_SERVE_IDLE_MS", d.idle_timeout),
            frame_timeout: ms("DNNPERF_SERVE_FRAME_MS", d.frame_timeout),
            poll: ms("DNNPERF_SERVE_POLL_MS", d.poll).max(Duration::from_millis(1)),
        }
    }
}

/// A running TCP front end over a [`PredictionServer`].
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

fn serve_error_response(e: ServeError) -> Response {
    match e {
        ServeError::Overloaded => Response::Overloaded,
        ServeError::DeadlineExceeded => Response::DeadlineExceeded,
        ServeError::ShuttingDown => Response::ShuttingDown,
        ServeError::Internal(m) => Response::Internal(m),
        other => Response::Error(other.to_string()),
    }
}

fn handle_request(server: &PredictionServer, req: &Request) -> Response {
    match req {
        Request::Predict {
            tenant,
            network,
            batch,
            deadline_ms,
        } => match server
            .submit_request(tenant, network, *batch, false, *deadline_ms)
            .and_then(Pending::wait)
        {
            Ok(reply) => Response::Ok {
                seconds: reply.seconds(),
                degraded_notes: None,
            },
            Err(e) => serve_error_response(e),
        },
        Request::Graceful {
            tenant,
            network,
            batch,
            deadline_ms,
        } => match server
            .submit_request(tenant, network, *batch, true, *deadline_ms)
            .and_then(Pending::wait)
        {
            Ok(Reply::Graceful(g)) => Response::Ok {
                seconds: g.seconds,
                degraded_notes: Some(g.notes.len()),
            },
            Ok(Reply::Strict(s)) => Response::Ok {
                seconds: s,
                degraded_notes: Some(0),
            },
            Err(e) => serve_error_response(e),
        },
        Request::Stats => server.stats_response(),
    }
}

fn handle_connection(
    server: &PredictionServer,
    stream: &mut TcpStream,
    stop: &AtomicBool,
    cfg: &TcpConfig,
) {
    // The socket read timeout turns a blocked read into a periodic
    // shutdown-flag / idle-deadline poll; in-frame stalls pace on the
    // same timeout, so read_frame_deadline needs no extra pause.
    let _ = stream.set_read_timeout(Some(cfg.poll));
    let _ = stream.set_nodelay(true);
    let clock = SystemClock;
    let mut idle_since = clock.now();
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let frame = match read_frame_deadline(stream, &clock, cfg.frame_timeout, Duration::ZERO) {
            Ok(FrameRead::Frame(f)) => f,
            Ok(FrameRead::Closed) => return, // clean client close
            Ok(FrameRead::Idle) => {
                if clock.now().saturating_sub(idle_since) >= cfg.idle_timeout {
                    return; // idle deadline: hang up on the quiet peer
                }
                continue;
            }
            // Slowloris: the frame started but won't finish. Drop it.
            Ok(FrameRead::TimedOut) => return,
            Err(e @ (WireError::Malformed(_) | WireError::FrameTooLarge(_))) => {
                // Tell a confused (not just dead) peer why, best-effort,
                // then drop the corrupt stream.
                let _ = write_frame(stream, &Response::Error(e.to_string()).format());
                return;
            }
            Err(_) => return,
        };
        let response = match Request::parse(&frame) {
            Ok(req) => handle_request(server, &req),
            Err(e) => Response::Error(e.to_string()),
        };
        if write_frame(stream, &response.format()).is_err() {
            return;
        }
        idle_since = clock.now();
    }
}

impl TcpServer {
    /// Binds `bind_addr` (e.g. `"127.0.0.1:0"`) and starts accepting
    /// connections that are served by `server`, with hardening knobs
    /// from [`TcpConfig::from_env`].
    ///
    /// # Errors
    ///
    /// The bind error, if the address is unavailable.
    pub fn serve(server: Arc<PredictionServer>, bind_addr: &str) -> std::io::Result<Self> {
        TcpServer::serve_with(server, bind_addr, TcpConfig::from_env())
    }

    /// [`TcpServer::serve`] with explicit hardening knobs.
    ///
    /// # Errors
    ///
    /// The bind error, if the address is unavailable.
    pub fn serve_with(
        server: Arc<PredictionServer>,
        bind_addr: &str,
        cfg: TcpConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(mut stream) = conn else { continue };
                let server = Arc::clone(&server);
                let stop = Arc::clone(&accept_stop);
                let cfg = cfg.clone();
                handlers.push(std::thread::spawn(move || {
                    handle_connection(&server, &mut stream, &stop, &cfg);
                }));
            }
            for h in handlers {
                let _ = h.join();
            }
        });
        Ok(TcpServer {
            addr,
            stop,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections, winds down every handler thread and
    /// joins them. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop: it only re-checks the flag per
        // connection, so poke it with a throwaway one.
        let _ = TcpStream::connect(self.addr);
        // Take the handle in its own scope so the registry guard is
        // dropped *before* the join: joining while holding the lock
        // would block every concurrent `shutdown` caller on a thread
        // that may itself still be winding handlers down (the
        // blocking-under-lock lint pass enforces this shape).
        let handle = {
            let mut guard = lock_unpoisoned(&self.accept_thread);
            guard.take()
        };
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TcpServer({})", self.addr)
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Whether a wire failure is worth retrying: transport-level faults are
/// (the peer may recover or a reconnect may land on a healthy path);
/// protocol-level failures are not.
fn transient(e: &WireError) -> bool {
    match e {
        WireError::Io(io) => matches!(
            io.kind(),
            ErrorKind::ConnectionRefused
                | ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
                | ErrorKind::BrokenPipe
                | ErrorKind::NotConnected
                | ErrorKind::TimedOut
                | ErrorKind::WouldBlock
                | ErrorKind::Interrupted
                | ErrorKind::UnexpectedEof
        ),
        _ => false,
    }
}

/// A minimal blocking client for the line protocol (used by tests and
/// the load generator; real clients can speak the protocol from any
/// language).
///
/// The client owns a reconnect-on-failure loop: transient transport
/// errors (including the server closing the connection mid-request)
/// tear down the socket and retry the whole call on a fresh connection,
/// under the [`RetryPolicy`] it was built with. Predictions are
/// idempotent reads, so resending is always safe. When the policy is
/// exhausted the call fails with [`WireError::Exhausted`].
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    policy: RetryPolicy,
    stream: Option<TcpStream>,
}

impl Client {
    /// Connects to a [`TcpServer`] with no retry budget (every
    /// transport failure is final) — the conservative default.
    ///
    /// # Errors
    ///
    /// The connect error.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Client::connect_with(addr, RetryPolicy::none())
    }

    /// Connects with a retry budget: the initial connect and every
    /// subsequent call retry transient failures under `policy`'s
    /// deterministic backoff.
    ///
    /// # Errors
    ///
    /// The final connect error once `policy` is exhausted.
    pub fn connect_with(addr: SocketAddr, policy: RetryPolicy) -> std::io::Result<Self> {
        let out = retry_with_backoff(
            &policy,
            &SystemClock,
            |_: &std::io::Error| RetryClass::Retriable,
            |_| TcpStream::connect(addr),
        );
        let stream = out.result?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            addr,
            policy,
            stream: Some(stream),
        })
    }

    fn attempt(&mut self, payload: &str) -> Result<Response, WireError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr).map_err(WireError::Io)?;
            let _ = stream.set_nodelay(true);
            self.stream = Some(stream);
        }
        let result = match self.stream.as_mut() {
            Some(stream) => {
                write_frame(stream, payload).and_then(|()| match read_frame(stream)? {
                    Some(line) => Response::parse(&line),
                    // Mid-request close: surface as a retriable
                    // transport fault, not a protocol error.
                    None => Err(WireError::Io(std::io::Error::new(
                        ErrorKind::ConnectionAborted,
                        "server closed the connection mid-request",
                    ))),
                })
            }
            None => Err(WireError::Io(std::io::Error::new(
                ErrorKind::NotConnected,
                "no connection",
            ))),
        };
        if result.is_err() {
            // Any failure poisons the framing state; reconnect next try.
            self.stream = None;
        }
        result
    }

    /// Sends one request and blocks for its response, retrying transient
    /// transport failures (with reconnects) under the client's policy.
    ///
    /// # Errors
    ///
    /// [`WireError::Exhausted`] once the retry budget is spent on
    /// transient faults; the raw [`WireError`] for permanent failures
    /// (malformed responses, oversized frames).
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        let payload = req.format();
        let policy = self.policy.clone();
        let out = retry_with_backoff(
            &policy,
            &SystemClock,
            |e: &WireError| {
                if transient(e) {
                    RetryClass::Retriable
                } else {
                    RetryClass::Permanent
                }
            },
            |_| self.attempt(&payload),
        );
        match out.result {
            Ok(resp) => Ok(resp),
            Err(last) if transient(&last) => Err(WireError::Exhausted {
                attempts: out.attempts,
                last: Box::new(last),
            }),
            Err(last) => Err(last),
        }
    }

    /// Convenience strict predict returning the decoded seconds.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] describing the failure for any non-`ok`
    /// response, or the transport error.
    pub fn predict(&mut self, tenant: &str, network: &str, batch: usize) -> Result<f64, WireError> {
        let resp = self.call(&Request::Predict {
            tenant: tenant.to_string(),
            network: network.to_string(),
            batch,
            deadline_ms: None,
        })?;
        match resp {
            Response::Ok { seconds, .. } => Ok(seconds),
            other => Err(WireError::Malformed(format!("server said {other:?}"))),
        }
    }

    /// Strict predict with a deadline of `deadline_ms` milliseconds.
    ///
    /// # Errors
    ///
    /// As for [`Client::predict`]; a shed or expired request surfaces as
    /// [`WireError::Malformed`] describing the `deadline-exceeded`
    /// response.
    pub fn predict_deadline(
        &mut self,
        tenant: &str,
        network: &str,
        batch: usize,
        deadline_ms: u64,
    ) -> Result<f64, WireError> {
        let resp = self.call(&Request::Predict {
            tenant: tenant.to_string(),
            network: network.to_string(),
            batch,
            deadline_ms: Some(deadline_ms),
        })?;
        match resp {
            Response::Ok { seconds, .. } => Ok(seconds),
            other => Err(WireError::Malformed(format!("server said {other:?}"))),
        }
    }
}
