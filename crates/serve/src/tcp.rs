//! The TCP front door: length-prefixed frames over per-connection
//! threads.
//!
//! [`TcpServer::serve`] binds a listener (pass port 0 for an ephemeral
//! port, read it back with [`TcpServer::addr`]) and spawns one accept
//! thread; each accepted connection gets its own handler thread that
//! loops `read_frame -> handle -> write_frame` until the client closes.
//! Shutdown is cooperative: a shared flag is set, the accept loop is
//! unblocked with a throwaway self-connection, and handler threads
//! notice the flag via a short socket read timeout — no thread is ever
//! killed mid-write, so every accepted request gets a response.

use crate::protocol::{read_frame, write_frame, Request, Response, WireError};
use crate::server::{PredictionServer, Reply, ServeError};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often a blocked connection read re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// A running TCP front end over a [`PredictionServer`].
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

fn serve_error_response(e: &ServeError) -> Response {
    match e {
        ServeError::Overloaded => Response::Overloaded,
        ServeError::ShuttingDown => Response::ShuttingDown,
        other => Response::Error(other.to_string()),
    }
}

fn handle_request(server: &PredictionServer, req: &Request) -> Response {
    match req {
        Request::Predict {
            tenant,
            network,
            batch,
        } => match server
            .submit(tenant, network, *batch)
            .and_then(super::server::Pending::wait)
        {
            Ok(reply) => Response::Ok {
                seconds: reply.seconds(),
                degraded_notes: None,
            },
            Err(e) => serve_error_response(&e),
        },
        Request::Graceful {
            tenant,
            network,
            batch,
        } => match server
            .submit_graceful(tenant, network, *batch)
            .and_then(super::server::Pending::wait)
        {
            Ok(Reply::Graceful(g)) => Response::Ok {
                seconds: g.seconds,
                degraded_notes: Some(g.notes.len()),
            },
            Ok(Reply::Strict(s)) => Response::Ok {
                seconds: s,
                degraded_notes: Some(0),
            },
            Err(e) => serve_error_response(&e),
        },
        Request::Stats => server.stats_response(),
    }
}

fn handle_connection(server: &PredictionServer, stream: &mut TcpStream, stop: &AtomicBool) {
    // A short read timeout turns a blocked read into a periodic
    // shutdown-flag poll.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let frame = match read_frame(stream) {
            Ok(Some(f)) => f,
            Ok(None) => return, // clean client close
            Err(WireError::Io(e))
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return, // corrupt stream: drop the connection
        };
        let response = match Request::parse(&frame) {
            Ok(req) => handle_request(server, &req),
            Err(e) => Response::Error(e.to_string()),
        };
        if write_frame(stream, &response.format()).is_err() {
            return;
        }
    }
}

impl TcpServer {
    /// Binds `bind_addr` (e.g. `"127.0.0.1:0"`) and starts accepting
    /// connections that are served by `server`.
    ///
    /// # Errors
    ///
    /// The bind error, if the address is unavailable.
    pub fn serve(server: Arc<PredictionServer>, bind_addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(mut stream) = conn else { continue };
                let server = Arc::clone(&server);
                let stop = Arc::clone(&accept_stop);
                handlers.push(std::thread::spawn(move || {
                    handle_connection(&server, &mut stream, &stop);
                }));
            }
            for h in handlers {
                let _ = h.join();
            }
        });
        Ok(TcpServer {
            addr,
            stop,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections, winds down every handler thread and
    /// joins them. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop: it only re-checks the flag per
        // connection, so poke it with a throwaway one.
        let _ = TcpStream::connect(self.addr);
        let handle = self
            .accept_thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TcpServer({})", self.addr)
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A minimal blocking client for the line protocol (used by tests and
/// the load generator; real clients can speak the protocol from any
/// language).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a [`TcpServer`].
    ///
    /// # Errors
    ///
    /// The connect error.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// [`WireError`] on socket failure, a dropped connection, or a
    /// malformed response.
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        write_frame(&mut self.stream, &req.format())?;
        match read_frame(&mut self.stream)? {
            Some(line) => Response::parse(&line),
            None => Err(WireError::Malformed(
                "server closed the connection".to_string(),
            )),
        }
    }

    /// Convenience strict predict returning the decoded seconds.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] describing the failure for any non-`ok`
    /// response, or the transport error.
    pub fn predict(&mut self, tenant: &str, network: &str, batch: usize) -> Result<f64, WireError> {
        let resp = self.call(&Request::Predict {
            tenant: tenant.to_string(),
            network: network.to_string(),
            batch,
        })?;
        match resp {
            Response::Ok { seconds, .. } => Ok(seconds),
            other => Err(WireError::Malformed(format!("server said {other:?}"))),
        }
    }
}
