//! End-to-end self-tests of the property harness: the `props!` macro, the
//! assertion macros, and — the load-bearing one — a planted failing
//! property whose input the shrinker must demonstrably minimize.

use dnnperf_testkit::prelude::*;
use dnnperf_testkit::runner;

props! {
    #[test]
    fn macro_binds_multiple_patterns(a in 0usize..10, (b, mut c) in (0u64..5, 0u64..5)) {
        c += 1;
        prop_assert!(a < 10);
        prop_assert!(b < 5 && c <= 5);
        prop_assert_ne!(c, 0);
    }

    #[test]
    fn vectors_and_filters_port_mechanically(
        xs in vec(-1e6..1e6f64, 3..40).prop_filter("not constant", |xs| {
            xs.iter().any(|x| (x - xs[0]).abs() > 1e-6)
        }),
        scale in select(vec![1.0f64, 2.0, 4.0]),
    ) {
        prop_assert!(xs.len() >= 3);
        let spread = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(spread * scale > 1e-6);
    }
}

/// The acceptance-criterion test: plant a property that fails whenever any
/// element reaches 100 and check the shrinker reduces the counterexample to
/// the *exact* minimal input `[100]` — one element, at the boundary.
#[test]
fn shrinking_minimizes_a_planted_failing_case() {
    let gen = vec(0u64..1000, 0..20);
    let failure = runner::run_report(
        "selftest::planted_any_element_ge_100",
        &gen,
        &Config::default(),
        |v: Vec<u64>| {
            assert!(v.iter().all(|&x| x < 100), "planted failure: {v:?}");
        },
    )
    .expect("the planted property must fail within the default case budget");
    assert_eq!(
        failure.minimized, "[100]",
        "shrinker must reduce to the one-element boundary case"
    );
    assert!(failure.message.contains("planted failure"));
}

/// Same demonstration through a `map`ped generator — shrinking works on the
/// choice stream, so it survives arbitrary value transformations.
#[test]
fn shrinking_penetrates_map() {
    #[derive(Debug, Clone, PartialEq)]
    struct Wrapped(u64);
    let gen = (0u64..1_000_000).prop_map(Wrapped);
    let failure = runner::run_report(
        "selftest::planted_mapped",
        &gen,
        &Config::default(),
        |w: Wrapped| assert!(w.0 < 123_456),
    )
    .expect("must fail");
    assert_eq!(failure.minimized, "Wrapped(123456)");
}

/// Failures must be reproducible: the same named property generates the
/// same cases on every run.
#[test]
fn reruns_find_the_same_minimized_failure() {
    let gen = vec(0u64..1000, 0..20);
    let prop = |v: Vec<u64>| assert!(v.iter().sum::<u64>() < 500);
    let a =
        runner::run_report("selftest::stable", &gen, &Config::default(), prop).expect("must fail");
    let b =
        runner::run_report("selftest::stable", &gen, &Config::default(), prop).expect("must fail");
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.case, b.case);
    assert_eq!(a.minimized, b.minimized);
}
