//! Generator combinators for the property-testing harness.
//!
//! A [`Gen`] produces values from a stream of 64-bit *choices* drawn from a
//! [`Source`]. In record mode the choices come from the seeded SplitMix64
//! stream ([`crate::hashrng::Rng`]) and are journaled; in replay mode they
//! come from a (possibly mutated) journal, which is what makes greedy input
//! shrinking work for *every* combinator — including `map`, `filter` and
//! `filter_map`, which are otherwise impossible to shrink through.
//!
//! All numeric generators map a raw draw to a value **monotonically** (via
//! the multiply-shift reduction), so minimizing a recorded choice minimizes
//! the generated value and the shrinker's per-position binary search finds
//! exact boundary inputs.

use crate::hashrng::{self, Rng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// How many times a `filter`/`filter_map` retries before the whole case is
/// discarded.
const FILTER_RETRIES: usize = 100;

/// The choice stream generators draw from.
#[derive(Debug)]
pub struct Source {
    rng: Rng,
    replay: Option<Vec<u64>>,
    pos: usize,
    recorded: Vec<u64>,
}

impl Source {
    /// A recording source backed by fresh entropy from `seed`.
    pub fn record(seed: u64) -> Self {
        Source {
            rng: Rng::new(seed),
            replay: None,
            pos: 0,
            recorded: Vec::new(),
        }
    }

    /// A replaying source: draws come from `choices`; once exhausted, every
    /// further draw is `0` (the minimal choice).
    pub fn replay(choices: Vec<u64>) -> Self {
        Source {
            rng: Rng::new(0),
            replay: Some(choices),
            pos: 0,
            recorded: Vec::new(),
        }
    }

    /// The next 64-bit choice.
    pub fn draw(&mut self) -> u64 {
        let v = match &self.replay {
            Some(buf) => buf.get(self.pos).copied().unwrap_or(0),
            None => self.rng.next_u64(),
        };
        self.pos += 1;
        self.recorded.push(v);
        v
    }

    /// The journal of every choice drawn so far.
    pub fn into_recorded(self) -> Vec<u64> {
        self.recorded
    }
}

/// Monotone reduction of a 64-bit draw onto `[0, n)`.
pub(crate) fn scaled(draw: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((draw as u128 * n as u128) >> 64) as u64
}

/// A generator of test-case values.
///
/// `generate` returns `None` when a filter rejected the case; the runner
/// resamples (record mode) or abandons the shrink candidate (replay mode).
pub trait Gen {
    /// The type of generated values.
    type Value: Debug;

    /// Produces one value from the choice stream.
    fn generate(&self, src: &mut Source) -> Option<Self::Value>;

    /// Transforms generated values, keeping proptest's name (`map` would
    /// collide with `Iterator::map` on range generators).
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (proptest's `prop_filter`).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        desc: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            desc,
            pred,
        }
    }

    /// Maps and filters in one step (proptest's `prop_filter_map`).
    fn prop_filter_map<U: Debug, F: Fn(Self::Value) -> Option<U>>(
        self,
        desc: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            desc,
            f,
        }
    }
}

macro_rules! int_range_gen {
    ($($t:ty),+) => {$(
        impl Gen for Range<$t> {
            type Value = $t;
            fn generate(&self, src: &mut Source) -> Option<$t> {
                assert!(self.start < self.end, "empty range generator");
                let span = (self.end - self.start) as u64;
                Some(self.start + scaled(src.draw(), span) as $t)
            }
        }
    )+};
}

int_range_gen!(usize, u32, u64);

impl Gen for Range<f64> {
    type Value = f64;
    fn generate(&self, src: &mut Source) -> Option<f64> {
        assert!(self.start < self.end, "empty range generator");
        Some(hashrng::uniform(src.draw(), self.start, self.end))
    }
}

/// Inclusive size bounds for collection generators.
pub trait SizeRange {
    /// `(min, max)`, both inclusive.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end())
    }
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// A vector generator; see [`vec`].
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    elem: G,
    min: usize,
    max: usize,
}

/// Generates a `Vec` whose length is drawn from `sizes` and whose elements
/// come from `elem` (proptest's `prop::collection::vec`).
pub fn vec<G: Gen>(elem: G, sizes: impl SizeRange) -> VecGen<G> {
    let (min, max) = sizes.bounds();
    VecGen { elem, min, max }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;
    fn generate(&self, src: &mut Source) -> Option<Vec<G::Value>> {
        let span = (self.max - self.min + 1) as u64;
        let len = self.min + scaled(src.draw(), span) as usize;
        (0..len).map(|_| self.elem.generate(src)).collect()
    }
}

/// A one-of-these-values generator; see [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

/// Picks one of the given options (proptest's `prop::sample::select`).
/// Shrinks toward earlier options.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select: no options");
    Select { options }
}

impl<T: Clone + Debug> Gen for Select<T> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> Option<T> {
        let i = scaled(src.draw(), self.options.len() as u64) as usize;
        Some(self.options[i].clone())
    }
}

/// A boolean generator; see [`any_bool`].
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

/// Either boolean, shrinking toward `false` (proptest's `bool::ANY`).
pub fn any_bool() -> AnyBool {
    AnyBool
}

impl Gen for AnyBool {
    type Value = bool;
    fn generate(&self, src: &mut Source) -> Option<bool> {
        Some(scaled(src.draw(), 2) == 1)
    }
}

/// A random-string generator; see [`string_class`].
#[derive(Debug, Clone)]
pub struct StringClass {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Generates strings over a regex-style character class (the body of a
/// `[...]`, e.g. `"A-Za-z0-9_"` or `" -~"`), with length drawn from
/// `sizes`. Replaces proptest's regex string strategies for the classes the
/// suites use. `\` escapes the next character; a trailing `-` is literal.
pub fn string_class(class: &str, sizes: impl SizeRange) -> StringClass {
    let raw: Vec<char> = class.chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        let c = if raw[i] == '\\' {
            i += 1;
            raw[i]
        } else {
            raw[i]
        };
        if raw.get(i + 1) == Some(&'-') && i + 2 < raw.len() {
            let hi = raw[i + 2];
            assert!(c <= hi, "string_class: inverted range {c}-{hi}");
            for u in (c as u32)..=(hi as u32) {
                chars.extend(char::from_u32(u));
            }
            i += 3;
        } else {
            chars.push(c);
            i += 1;
        }
    }
    assert!(!chars.is_empty(), "string_class: empty class");
    let (min, max) = sizes.bounds();
    StringClass { chars, min, max }
}

impl Gen for StringClass {
    type Value = String;
    fn generate(&self, src: &mut Source) -> Option<String> {
        let span = (self.max - self.min + 1) as u64;
        let len = self.min + scaled(src.draw(), span) as usize;
        let n = self.chars.len() as u64;
        Some(
            (0..len)
                .map(|_| self.chars[scaled(src.draw(), n) as usize])
                .collect(),
        )
    }
}

/// The result of [`Gen::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G: Gen, U: Debug, F: Fn(G::Value) -> U> Gen for Map<G, F> {
    type Value = U;
    fn generate(&self, src: &mut Source) -> Option<U> {
        self.inner.generate(src).map(&self.f)
    }
}

/// The result of [`Gen::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<G, F> {
    inner: G,
    #[allow(dead_code)] // Documentation for humans reading the test source.
    desc: &'static str,
    pred: F,
}

impl<G: Gen, F: Fn(&G::Value) -> bool> Gen for Filter<G, F> {
    type Value = G::Value;
    fn generate(&self, src: &mut Source) -> Option<G::Value> {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = self.inner.generate(src) {
                if (self.pred)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// The result of [`Gen::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<G, F> {
    inner: G,
    #[allow(dead_code)] // Documentation for humans reading the test source.
    desc: &'static str,
    f: F,
}

impl<G: Gen, U: Debug, F: Fn(G::Value) -> Option<U>> Gen for FilterMap<G, F> {
    type Value = U;
    fn generate(&self, src: &mut Source) -> Option<U> {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = self.inner.generate(src) {
                if let Some(u) = (self.f)(v) {
                    return Some(u);
                }
            }
        }
        None
    }
}

macro_rules! tuple_gen {
    ($($g:ident . $v:ident),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);
            fn generate(&self, src: &mut Source) -> Option<Self::Value> {
                let ($($v,)+) = self;
                Some(($(
                    match $v.generate(src) {
                        Some(x) => x,
                        None => return None,
                    },
                )+))
            }
        }
    };
}

tuple_gen!(A.a);
tuple_gen!(A.a, B.b);
tuple_gen!(A.a, B.b, C.c);
tuple_gen!(A.a, B.b, C.c, D.d);
tuple_gen!(A.a, B.b, C.c, D.d, E.e);
tuple_gen!(A.a, B.b, C.c, D.d, E.e, F.f);
tuple_gen!(A.a, B.b, C.c, D.d, E.e, F.f, G.g);
tuple_gen!(A.a, B.b, C.c, D.d, E.e, F.f, G.g, H.h);

#[cfg(test)]
mod tests {
    use super::*;

    fn sample<G: Gen>(g: &G, seed: u64) -> G::Value {
        g.generate(&mut Source::record(seed))
            .expect("generation succeeds")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        for seed in 0..500 {
            let u = sample(&(3usize..9), seed);
            assert!((3..9).contains(&u));
            let x = sample(&(1u64..1_000_000), seed);
            assert!((1..1_000_000).contains(&x));
            let f = sample(&(1e-7..1e-2f64), seed);
            assert!((1e-7..1e-2).contains(&f));
        }
    }

    #[test]
    fn zero_draw_is_range_minimum() {
        let mut src = Source::replay(vec![]);
        assert_eq!((5usize..100).generate(&mut src).unwrap(), 5);
        assert_eq!((2.0..3.0f64).generate(&mut src).unwrap(), 2.0);
        assert!(!any_bool().generate(&mut src).unwrap());
    }

    #[test]
    fn int_mapping_is_monotone_in_the_draw() {
        let g = 10u64..1000;
        let mut last = 0;
        for draw in (0..64).map(|i| u64::MAX / 64 * i) {
            let mut src = Source::replay(vec![draw]);
            let v = g.generate(&mut src).unwrap();
            assert!(v >= last, "monotone mapping violated");
            last = v;
        }
    }

    #[test]
    fn vec_respects_size_bounds() {
        for seed in 0..200 {
            let v = sample(&vec(0u64..10, 2..7), seed);
            assert!((2..7).contains(&v.len()));
            let w = sample(&vec(0u64..10, 4..=4), seed);
            assert_eq!(w.len(), 4);
        }
    }

    #[test]
    fn select_only_picks_options() {
        let opts = [1usize, 3, 5, 7];
        for seed in 0..100 {
            assert!(opts.contains(&sample(&select(opts.to_vec()), seed)));
        }
    }

    #[test]
    fn string_class_parses_ranges_escapes_and_trailing_dash() {
        let g = string_class("A-Za-z0-9_.\\[\\]-", 1..=24);
        assert_eq!(g.chars.len(), 26 + 26 + 10 + 5);
        assert!(g.chars.contains(&'['));
        assert!(g.chars.contains(&']'));
        assert!(g.chars.contains(&'-'));
        assert!(g.chars.contains(&'.'));
        for seed in 0..100 {
            let s = sample(&g, seed);
            assert!((1..=24).contains(&s.len()));
            assert!(s.chars().all(|c| g.chars.contains(&c)));
        }
        // Printable ASCII.
        let junk = string_class(" -~", 0..=80);
        assert_eq!(junk.chars.len(), 95);
    }

    #[test]
    fn map_filter_and_tuples_compose() {
        let g = (0usize..10, 0usize..10)
            .prop_map(|(a, b)| a * 10 + b)
            .prop_filter("must be even", |v| v % 2 == 0);
        for seed in 0..100 {
            let v = sample(&g, seed);
            assert_eq!(v % 2, 0);
            assert!(v < 100);
        }
    }

    #[test]
    fn filter_gives_up_instead_of_spinning() {
        let g = (0usize..10).prop_filter("impossible", |_| false);
        assert!(g.generate(&mut Source::record(1)).is_none());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = vec((0usize..100, 0.0..1.0f64), 0..10);
        assert_eq!(
            format!("{:?}", sample(&g, 9)),
            format!("{:?}", sample(&g, 9))
        );
    }
}
