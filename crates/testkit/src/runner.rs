//! The property runner: seeded case generation, failure detection and
//! greedy choice-stream shrinking.
//!
//! Each test case is generated from a seed derived with
//! [`crate::hashrng::hash_with`] from the property's fully qualified name
//! and the case index, so every run of the suite explores the same cases —
//! failures are reproducible without a regressions side-file.
//!
//! When a property fails, the journal of 64-bit choices that produced the
//! failing input is minimized greedily:
//!
//! 1. **chunk deletion** — remove spans of choices (shortens vectors and
//!    drops unused entropy);
//! 2. **per-position binary search** — minimize each choice individually;
//!    because every generator maps draws to values monotonically, this
//!    finds exact boundary inputs (e.g. *the* smallest failing length).
//!
//! The shrunk input is reported in the panic message via `Debug`.

use crate::gen::{Gen, Source};
use crate::hashrng::hash_with;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property (env `TESTKIT_CASES`
    /// overrides; default 128).
    pub cases: u32,
    /// Upper bound on candidate evaluations while shrinking.
    pub max_shrink_evals: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("TESTKIT_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(128);
        Config {
            cases,
            max_shrink_evals: 4096,
        }
    }
}

/// A minimized property failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Index of the failing case.
    pub case: u32,
    /// Seed that produced the original failing input.
    pub seed: u64,
    /// `Debug` rendering of the minimized failing input.
    pub minimized: String,
    /// Panic message of the minimized failing run.
    pub message: String,
}

thread_local! {
    /// Set while a property probe runs: its panics are expected and muted.
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = err.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `f` with probe panics muted, returning the panic message on failure.
fn quiet<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_hook();
    QUIET.with(|q| q.set(true));
    let r = catch_unwind(AssertUnwindSafe(f));
    QUIET.with(|q| q.set(false));
    r.map_err(panic_message)
}

/// Evaluates `prop` on the input regenerated from `choices`.
///
/// Returns `Some((effective_choices, message))` if the property still
/// fails. The effective journal is what the regeneration actually consumed
/// with trailing zeros trimmed — a replay source pads with zeros past the
/// end of the journal, so trailing zeros carry no information and keeping
/// them would let the shrinker "accept" candidates that made no progress.
fn eval_candidate<G: Gen, F: Fn(G::Value)>(
    gen: &G,
    prop: &F,
    choices: &[u64],
) -> Option<(Vec<u64>, String)> {
    let mut src = Source::replay(choices.to_vec());
    let generated = quiet(|| gen.generate(&mut src)).ok()??;
    let mut effective = src.into_recorded();
    while effective.last() == Some(&0) {
        effective.pop();
    }
    let msg = quiet(|| prop(generated)).err()?;
    Some((effective, msg))
}

/// Well-founded progress order for journals: shorter wins; at equal length
/// lexicographically smaller wins. Every accepted shrink strictly decreases
/// this order, so the shrink loop terminates without relying on the budget.
fn is_better(candidate: &[u64], best: &[u64]) -> bool {
    candidate.len() < best.len() || (candidate.len() == best.len() && candidate < best)
}

/// Greedily minimizes a failing choice journal.
fn shrink<G: Gen, F: Fn(G::Value)>(
    gen: &G,
    prop: &F,
    mut best: Vec<u64>,
    mut best_msg: String,
    budget: u32,
) -> (Vec<u64>, String) {
    let mut evals = 0u32;
    // Normalize the starting journal the way `eval_candidate` normalizes
    // candidates, so the very first comparisons are apples-to-apples.
    while best.last() == Some(&0) {
        best.pop();
    }
    let try_accept =
        |best: &mut Vec<u64>, best_msg: &mut String, candidate: &[u64], evals: &mut u32| -> bool {
            if *evals >= budget {
                return false;
            }
            *evals += 1;
            match eval_candidate(gen, prop, candidate) {
                Some((effective, msg)) if is_better(&effective, best) => {
                    *best = effective;
                    *best_msg = msg;
                    true
                }
                _ => false,
            }
        };

    let mut improved = true;
    while improved && evals < budget {
        improved = false;

        // Pass 1: delete chunks of choices, largest first, scanning from
        // the tail (vectors draw their length first, so tails are the
        // cheapest entropy to drop).
        let mut chunk = (best.len() / 2).max(1);
        loop {
            let mut start = best.len().saturating_sub(chunk);
            loop {
                if start + chunk <= best.len() {
                    let mut candidate = best.clone();
                    candidate.drain(start..start + chunk);
                    if try_accept(&mut best, &mut best_msg, &candidate, &mut evals) {
                        improved = true;
                        // `best` shrank; restart this chunk size from the
                        // (new) tail.
                        start = best.len().saturating_sub(chunk);
                        continue;
                    }
                }
                if start == 0 {
                    break;
                }
                start = start.saturating_sub(chunk);
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Pass 2: minimize each choice with a binary search. Generators map
        // draws monotonically, so the smallest still-failing draw is the
        // smallest still-failing value. Accepting a candidate can change the
        // journal's length (e.g. shrinking a vector's length draw drops the
        // element draws past the new end), so re-check bounds every step.
        let mut i = 0;
        while i < best.len() {
            if best[i] == 0 || evals >= budget {
                i += 1;
                continue;
            }
            let mut candidate = best.clone();
            candidate[i] = 0;
            if try_accept(&mut best, &mut best_msg, &candidate, &mut evals) {
                improved = true;
                // Position `i` may now hold a different draw (or be gone);
                // re-examine it before moving on.
                continue;
            }
            // 0 passes, best[i] fails: binary-search the boundary draw.
            let (mut lo, mut hi) = (0u64, best[i]);
            while hi - lo > 1 && evals < budget && i < best.len() {
                let mid = lo + (hi - lo) / 2;
                let mut candidate = best.clone();
                candidate[i] = mid;
                if try_accept(&mut best, &mut best_msg, &candidate, &mut evals) {
                    improved = true;
                    hi = mid;
                    if best.get(i) != Some(&mid) {
                        // The accepted journal restructured around `i`;
                        // the bracket no longer describes it.
                        break;
                    }
                } else {
                    lo = mid;
                }
            }
            i += 1;
        }
    }
    (best, best_msg)
}

/// Runs a property against generated inputs, returning the minimized
/// failure (if any) instead of panicking. The panicking entry point used by
/// the [`crate::props!`] macro is [`run`].
pub fn run_report<G, F>(name: &str, gen: &G, cfg: &Config, prop: F) -> Option<Failure>
where
    G: Gen,
    F: Fn(G::Value),
{
    let mut discards = 0u32;
    let mut case = 0u32;
    let mut attempts = 0u32;
    while case < cfg.cases {
        let seed = hash_with(name, attempts as u64);
        attempts += 1;
        let mut src = Source::record(seed);
        let value = match gen.generate(&mut src) {
            Some(v) => v,
            None => {
                discards += 1;
                assert!(
                    discards <= 10 * cfg.cases,
                    "property {name}: generator discarded too many cases ({discards})"
                );
                continue;
            }
        };
        case += 1;
        if let Err(message) = quiet(|| prop(value)) {
            let choices = src.into_recorded();
            let (min_choices, min_msg) = shrink(gen, &prop, choices, message, cfg.max_shrink_evals);
            let minimized = {
                let mut s = Source::replay(min_choices);
                let v = gen
                    .generate(&mut s)
                    .expect("minimized case must regenerate");
                format!("{v:?}")
            };
            return Some(Failure {
                case: case - 1,
                seed,
                minimized,
                message: min_msg,
            });
        }
    }
    None
}

/// Runs a property and panics with a minimized counterexample on failure.
///
/// This is what [`crate::props!`] expands to; `name` should be the fully
/// qualified test name so per-case seeds differ between properties.
pub fn run<G, F>(name: &str, gen: &G, prop: F)
where
    G: Gen,
    F: Fn(G::Value),
{
    let cfg = Config::default();
    if let Some(f) = run_report(name, gen, &cfg, prop) {
        panic!(
            "property {name} failed (case {}, seed {:#018x})\n  \
             minimized input: {}\n  failure: {}",
            f.case, f.seed, f.minimized, f.message
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::vec;

    fn cfg(cases: u32) -> Config {
        Config {
            cases,
            max_shrink_evals: 4096,
        }
    }

    #[test]
    fn passing_property_reports_nothing() {
        let g = vec(0u64..100, 0..20);
        let r = run_report("runner::passing", &g, &cfg(64), |v: Vec<u64>| {
            assert!(v.len() < 20);
            assert!(v.iter().all(|&x| x < 100));
        });
        assert!(r.is_none());
    }

    #[test]
    fn failing_property_is_caught_and_messaged() {
        let r = run_report("runner::failing", &(0u64..1000), &cfg(64), |x| {
            assert!(x < 10, "x was {x}");
        });
        let f = r.expect("must fail");
        assert!(f.message.contains("x was"), "message: {}", f.message);
    }

    #[test]
    fn shrinker_finds_exact_integer_boundary() {
        let r = run_report("runner::boundary", &(0u64..1_000_000), &cfg(64), |x| {
            assert!(x < 777_777);
        });
        let f = r.expect("must fail");
        assert_eq!(
            f.minimized, "777777",
            "binary search must find the boundary"
        );
    }

    #[test]
    fn discarding_generator_aborts_instead_of_spinning() {
        use crate::gen::Gen as _;
        let g = (0u64..10).prop_filter("never", |_| false);
        let result = std::panic::catch_unwind(|| {
            run_report("runner::discards", &g, &cfg(4), |_x| {});
        });
        assert!(result.is_err(), "all-discarding generator must abort");
    }

    #[test]
    fn seeds_differ_between_properties_and_cases() {
        assert_ne!(
            crate::hashrng::hash_with("a::prop1", 0),
            crate::hashrng::hash_with("a::prop2", 0)
        );
        assert_ne!(
            crate::hashrng::hash_with("a::prop1", 0),
            crate::hashrng::hash_with("a::prop1", 1)
        );
    }
}
