//! Deterministic hash-based pseudo-randomness.
//!
//! The ground-truth timing model needs *reproducible* per-kernel and per-GPU
//! parameters: the same (kernel, GPU) pair must always get the same hidden
//! efficiency, and the same (kernel, network, batch) measurement must always
//! return the same noisy value — otherwise dataset deduplication and the
//! paper's repeat-measurement protocol would be meaningless. We therefore
//! derive everything from FNV-1a string hashing finalized with SplitMix64
//! rather than from a stateful RNG.
//!
//! This module lives in `dnnperf-testkit` (and is re-exported as
//! `dnnperf_gpu::hashrng`) because the property-testing harness drives its
//! seeded case generation from the same machinery: one implementation,
//! shared by the measurement substrate and the test infrastructure.

/// FNV-1a hash of a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The SplitMix64 increment ("golden gamma").
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 finalizer: decorrelates structured inputs.
pub fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash of a string combined with a numeric salt.
pub fn hash_with(s: &str, salt: u64) -> u64 {
    splitmix(fnv1a(s.as_bytes()) ^ splitmix(salt))
}

/// Uniform sample in `[0, 1)` derived from a hash.
pub fn unit(h: u64) -> f64 {
    // Use the top 53 bits for a dyadic rational in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform sample in `[lo, hi)` derived from a hash.
pub fn uniform(h: u64, lo: f64, hi: f64) -> f64 {
    lo + unit(h) * (hi - lo)
}

/// Standard normal sample derived from a hash (Box–Muller on two
/// decorrelated sub-hashes).
pub fn normal(h: u64) -> f64 {
    let u1 = unit(splitmix(h ^ 0xA5A5_A5A5_A5A5_A5A5)).max(1e-12);
    let u2 = unit(splitmix(h ^ 0x5A5A_5A5A_5A5A_5A5A));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Lognormal multiplicative factor `exp(sigma * z)` with unit median.
pub fn lognormal(h: u64, sigma: f64) -> f64 {
    (sigma * normal(h)).exp()
}

/// A small, seeded, stateful PRNG: the SplitMix64 sequence.
///
/// Where the hash functions above derive *stable* values from names, `Rng`
/// covers the few places that need a reproducible *stream* — the train/test
/// shuffle and the property-testing harness's case generation.
///
/// # Examples
///
/// ```
/// use dnnperf_testkit::hashrng::Rng;
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        // One finalization round decorrelates small consecutive seeds.
        Rng {
            state: splitmix(seed),
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = splitmix(self.state);
        self.state = self.state.wrapping_add(GAMMA);
        out
    }

    /// Uniform sample in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        unit(self.next_u64())
    }

    /// Uniform index in `[0, n)` via the multiply-shift reduction
    /// (monotone in the underlying 64-bit draw; no modulo bias to speak of
    /// for the small `n` used here).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::index: empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// In-place Fisher–Yates shuffle, deterministic for a given seed.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_with("sgemm", 7), hash_with("sgemm", 7));
        assert_ne!(hash_with("sgemm", 7), hash_with("sgemm", 8));
        assert_ne!(hash_with("sgemm", 7), hash_with("dgemm", 7));
    }

    #[test]
    fn unit_in_range() {
        for i in 0..1000u64 {
            let u = unit(splitmix(i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_in_range() {
        for i in 0..1000u64 {
            let u = uniform(splitmix(i), 2.0, 3.0);
            assert!((2.0..3.0).contains(&u));
        }
    }

    #[test]
    fn unit_is_roughly_uniform() {
        let n = 10_000u64;
        let mean: f64 = (0..n).map(|i| unit(splitmix(i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_has_unit_scale() {
        let n = 10_000u64;
        let samples: Vec<f64> = (0..n)
            .map(|i| normal(splitmix(i.wrapping_mul(2654435761))))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median_near_one() {
        let mut samples: Vec<f64> = (0..9999u64)
            .map(|i| lognormal(splitmix(i.wrapping_mul(0x9E3779B9)), 0.1))
            .collect();
        samples.sort_by(f64::total_cmp);
        let med = samples[samples.len() / 2];
        assert!((med - 1.0).abs() < 0.02, "median {med}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn rng_stream_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rng_unit_is_roughly_uniform() {
        let mut r = Rng::new(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = Rng::new(9);
        rng.shuffle(&mut v);
        assert_ne!(
            v,
            (0..100).collect::<Vec<u32>>(),
            "shuffle should move things"
        );
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn index_is_in_range_and_covers() {
        let mut rng = Rng::new(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = rng.index(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all indices reachable");
    }
}
