//! Std-only deterministic randomness and property testing for dnnperf.
//!
//! The workspace builds hermetically — no crates.io dependencies — so this
//! crate provides the two pieces that normally come from outside:
//!
//! * [`hashrng`] — the FNV-1a + SplitMix64 machinery the GPU ground-truth
//!   timing model derives its reproducible parameters from (re-exported as
//!   `dnnperf_gpu::hashrng`), plus a tiny seeded [`hashrng::Rng`] stream
//!   used for the train/test shuffle and case generation;
//! * [`gen`] + [`runner`] + [`props!`] — a minimal property-testing
//!   harness replacing `proptest` for the workspace's test suites: seeded
//!   case generation, generator combinators (ranges, vectors, tuples,
//!   `map`/`filter`/`filter_map`, `select`, strings over character
//!   classes) and greedy choice-stream shrinking that reports a minimized
//!   counterexample.
//!
//! # Porting from proptest
//!
//! ```
//! use dnnperf_testkit::prelude::*;
//!
//! props! {
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # addition_commutes();
//! ```
//!
//! In test suites each item carries `#[test]` (the macro re-emits any
//! attributes it is given); the example omits it so the doctest can call
//! the generated function directly.
//!
//! `proptest! { .. }` becomes `props! { .. }`, `prop::collection::vec`
//! becomes [`gen::vec`], `prop_map`/`prop_filter`/`prop_filter_map` keep
//! their names ([`gen::Gen::prop_map`] etc.), regex
//! strategies become [`gen::string_class`], and `prop_assert*` keep their
//! names. Properties are plain `()`-returning bodies; assertion macros
//! panic (the runner catches, shrinks and re-reports).

#![warn(missing_docs)]

pub mod gen;
pub mod hashrng;
pub mod runner;

/// The glob import that makes proptest-style suites port mechanically.
pub mod prelude {
    pub use crate::gen::{any_bool, select, string_class, vec, Gen, SizeRange};
    pub use crate::runner::{run, run_report, Config, Failure};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, props};
}

/// Defines property tests from generator bindings, proptest-style.
///
/// Each `#[test] fn name(pat in gen, ...) { body }` item becomes a normal
/// `#[test]` that runs `body` against [`runner::Config::cases`] generated
/// inputs and panics with a minimized counterexample on failure.
#[macro_export]
macro_rules! props {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $g:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let gens = ($($g,)+);
                $crate::runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    &gens,
                    |($($pat,)+)| $body,
                );
            }
        )*
    };
}

/// `assert!` under a name the proptest suites already use.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)+) => { assert!($($t)+) };
}

/// `assert_eq!` under a name the proptest suites already use.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)+) => { assert_eq!($($t)+) };
}

/// `assert_ne!` under a name the proptest suites already use.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)+) => { assert_ne!($($t)+) };
}
