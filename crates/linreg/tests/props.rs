//! Property-based tests for the regression and metric primitives.

use dnnperf_linreg::{
    fit, fit_bounded_intercept, fit_through_origin, mean_abs_rel_error, percentile, ratio_curve,
};
use dnnperf_testkit::prelude::*;

fn finite_xs() -> impl Gen<Value = Vec<f64>> {
    vec(-1e6..1e6f64, 3..40).prop_filter("xs must not be constant", |xs| {
        xs.iter().any(|x| (x - xs[0]).abs() > 1e-6)
    })
}

props! {
    #[test]
    fn fit_recovers_exact_lines(xs in finite_xs(), slope in -100.0..100.0f64, intercept in -100.0..100.0f64) {
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let f = fit(&xs, &ys).unwrap();
        let scale = slope.abs().max(1.0);
        prop_assert!((f.line.slope - slope).abs() < 1e-6 * scale, "slope {} vs {}", f.line.slope, slope);
        prop_assert!(f.r2 > 1.0 - 1e-6);
    }

    #[test]
    fn fit_residuals_beat_any_other_line(xs in finite_xs(), noise in vec(-1.0..1.0f64, 40), d_slope in -0.5..0.5f64, d_int in -5.0..5.0f64) {
        let ys: Vec<f64> = xs.iter().zip(&noise).map(|(x, n)| 2.0 * x + n).collect();
        let f = fit(&xs, &ys).unwrap();
        let sse = |s: f64, i: f64| -> f64 {
            xs.iter().zip(&ys).map(|(x, y)| (y - s * x - i).powi(2)).sum()
        };
        let best = sse(f.line.slope, f.line.intercept);
        let other = sse(f.line.slope + d_slope, f.line.intercept + d_int);
        prop_assert!(best <= other + 1e-6 * best.max(1.0));
    }

    #[test]
    fn bounded_intercept_invariant(xs in finite_xs(), ys_raw in vec(0.001..1e4f64, 3..40)) {
        let n = xs.len().min(ys_raw.len());
        if n < 3 { return; }
        let (xs, ys) = (&xs[..n], &ys_raw[..n]);
        if let Ok(f) = fit_bounded_intercept(xs, ys) {
            let min_y = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(f.line.intercept >= 0.0);
            prop_assert!(f.line.intercept <= min_y + 1e-9);
        }
    }

    #[test]
    fn through_origin_has_zero_intercept(xs in finite_xs(), k in 0.01..100.0f64) {
        let ys: Vec<f64> = xs.iter().map(|x| k * x).collect();
        let f = fit_through_origin(&xs, &ys).unwrap();
        prop_assert_eq!(f.line.intercept, 0.0);
        prop_assert!((f.line.slope - k).abs() < 1e-6 * k);
    }

    #[test]
    fn percentile_is_bounded_and_monotone(mut xs in vec(-1e9..1e9f64, 1..100), p1 in 0.0..100.0f64, p2 in 0.0..100.0f64) {
        xs.sort_by(|a, b| a.total_cmp(b));
        let (lo, hi) = (xs[0], xs[xs.len() - 1]);
        let v1 = percentile(&xs, p1);
        let v2 = percentile(&xs, p2);
        prop_assert!(v1 >= lo && v1 <= hi);
        if p1 <= p2 {
            prop_assert!(v1 <= v2 + 1e-12);
        }
    }

    #[test]
    fn percentile_quickselect_matches_sort_based(xs in vec(-1e9..1e9f64, 1..120), p in 0.0..100.0f64) {
        // Reference: the pre-quickselect implementation — full sort under
        // total_cmp, then linear interpolation between the two ranks.
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = p.clamp(0.0, 100.0) / 100.0 * (sorted.len() - 1) as f64;
        let (lo, hi) = (rank.floor() as usize, rank.ceil() as usize);
        let expect = if lo == hi {
            sorted[lo]
        } else {
            let w = rank - lo as f64;
            sorted[lo] * (1.0 - w) + sorted[hi] * w
        };
        let got = percentile(&xs, p);
        prop_assert_eq!(got.to_bits(), expect.to_bits(), "p={} got={} expect={}", p, got, expect);
    }

    #[test]
    fn percentile_quickselect_handles_duplicates_and_nan(base in vec(-10.0..10.0f64, 2..40), dup_every in 1..5usize, p in 0.0..100.0f64) {
        // Heavy duplication plus an injected NaN stresses the all-equal
        // partition path; the result must still match the sorted reference.
        let mut xs: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(i, v)| if i % dup_every == 0 { base[0] } else { *v })
            .collect();
        xs.push(f64::NAN);
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = p.clamp(0.0, 100.0) / 100.0 * (sorted.len() - 1) as f64;
        let (lo, hi) = (rank.floor() as usize, rank.ceil() as usize);
        let expect = if lo == hi {
            sorted[lo]
        } else {
            let w = rank - lo as f64;
            sorted[lo] * (1.0 - w) + sorted[hi] * w
        };
        prop_assert_eq!(percentile(&xs, p).to_bits(), expect.to_bits());
    }

    #[test]
    fn fused_fit_matches_two_pass_reference(xs in finite_xs(), noise in vec(-1.0..1.0f64, 40), slope in -50.0..50.0f64, intercept in -10.0..10.0f64) {
        // Reference: textbook two-pass OLS (means, then centred moments).
        let ys: Vec<f64> = xs.iter().zip(&noise).map(|(x, n)| slope * x + intercept + n).collect();
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        let mx = xs.iter().sum::<f64>() / n as f64;
        let my = ys.iter().sum::<f64>() / n as f64;
        let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let ref_slope = sxy / sxx;
        let ref_int = my - ref_slope * mx;
        let f = fit(xs, ys).unwrap();
        let scale = ref_slope.abs().max(1.0);
        prop_assert!((f.line.slope - ref_slope).abs() < 1e-9 * scale, "slope {} vs {}", f.line.slope, ref_slope);
        prop_assert!((f.line.intercept - ref_int).abs() < 1e-6 * ref_int.abs().max(1.0));
    }

    #[test]
    fn mare_is_scale_invariant(pred in vec(0.1..1e3f64, 1..30), scale in 0.1..100.0f64) {
        let meas: Vec<f64> = pred.iter().map(|p| p * 1.1).collect();
        let a = mean_abs_rel_error(&pred, &meas);
        let scaled_p: Vec<f64> = pred.iter().map(|p| p * scale).collect();
        let scaled_m: Vec<f64> = meas.iter().map(|m| m * scale).collect();
        let b = mean_abs_rel_error(&scaled_p, &scaled_m);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn ratio_curve_is_sorted(pred in vec(0.1..1e3f64, 2..50)) {
        let meas = vec![1.0; pred.len()];
        let pts = ratio_curve(&pred, &meas, &[0.0, 25.0, 50.0, 75.0, 100.0]);
        for w in pts.windows(2) {
            prop_assert!(w[0].ratio <= w[1].ratio + 1e-12);
        }
    }
}
