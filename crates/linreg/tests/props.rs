//! Property-based tests for the regression and metric primitives.

use dnnperf_linreg::{
    fit, fit_bounded_intercept, fit_huber, fit_through_origin, mean_abs_rel_error, median,
    percentile, ratio_curve, Line, OlsAccum, WlsAccum, FIT_CHUNK, HUBER_K,
};
use dnnperf_testkit::prelude::*;

fn finite_xs() -> impl Gen<Value = Vec<f64>> {
    vec(-1e6..1e6f64, 3..40).prop_filter("xs must not be constant", |xs| {
        xs.iter().any(|x| (x - xs[0]).abs() > 1e-6)
    })
}

props! {
    #[test]
    fn fit_recovers_exact_lines(xs in finite_xs(), slope in -100.0..100.0f64, intercept in -100.0..100.0f64) {
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let f = fit(&xs, &ys).unwrap();
        let scale = slope.abs().max(1.0);
        prop_assert!((f.line.slope - slope).abs() < 1e-6 * scale, "slope {} vs {}", f.line.slope, slope);
        prop_assert!(f.r2 > 1.0 - 1e-6);
    }

    #[test]
    fn fit_residuals_beat_any_other_line(xs in finite_xs(), noise in vec(-1.0..1.0f64, 40), d_slope in -0.5..0.5f64, d_int in -5.0..5.0f64) {
        let ys: Vec<f64> = xs.iter().zip(&noise).map(|(x, n)| 2.0 * x + n).collect();
        let f = fit(&xs, &ys).unwrap();
        let sse = |s: f64, i: f64| -> f64 {
            xs.iter().zip(&ys).map(|(x, y)| (y - s * x - i).powi(2)).sum()
        };
        let best = sse(f.line.slope, f.line.intercept);
        let other = sse(f.line.slope + d_slope, f.line.intercept + d_int);
        prop_assert!(best <= other + 1e-6 * best.max(1.0));
    }

    #[test]
    fn bounded_intercept_invariant(xs in finite_xs(), ys_raw in vec(0.001..1e4f64, 3..40)) {
        let n = xs.len().min(ys_raw.len());
        if n < 3 { return; }
        let (xs, ys) = (&xs[..n], &ys_raw[..n]);
        if let Ok(f) = fit_bounded_intercept(xs, ys) {
            let min_y = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(f.line.intercept >= 0.0);
            prop_assert!(f.line.intercept <= min_y + 1e-9);
        }
    }

    #[test]
    fn through_origin_has_zero_intercept(xs in finite_xs(), k in 0.01..100.0f64) {
        let ys: Vec<f64> = xs.iter().map(|x| k * x).collect();
        let f = fit_through_origin(&xs, &ys).unwrap();
        prop_assert_eq!(f.line.intercept, 0.0);
        prop_assert!((f.line.slope - k).abs() < 1e-6 * k);
    }

    #[test]
    fn percentile_is_bounded_and_monotone(mut xs in vec(-1e9..1e9f64, 1..100), p1 in 0.0..100.0f64, p2 in 0.0..100.0f64) {
        xs.sort_by(|a, b| a.total_cmp(b));
        let (lo, hi) = (xs[0], xs[xs.len() - 1]);
        let v1 = percentile(&xs, p1);
        let v2 = percentile(&xs, p2);
        prop_assert!(v1 >= lo && v1 <= hi);
        if p1 <= p2 {
            prop_assert!(v1 <= v2 + 1e-12);
        }
    }

    #[test]
    fn percentile_quickselect_matches_sort_based(xs in vec(-1e9..1e9f64, 1..120), p in 0.0..100.0f64) {
        // Reference: the pre-quickselect implementation — full sort under
        // total_cmp, then linear interpolation between the two ranks.
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = p.clamp(0.0, 100.0) / 100.0 * (sorted.len() - 1) as f64;
        let (lo, hi) = (rank.floor() as usize, rank.ceil() as usize);
        let expect = if lo == hi {
            sorted[lo]
        } else {
            let w = rank - lo as f64;
            sorted[lo] * (1.0 - w) + sorted[hi] * w
        };
        let got = percentile(&xs, p);
        prop_assert_eq!(got.to_bits(), expect.to_bits(), "p={} got={} expect={}", p, got, expect);
    }

    #[test]
    fn percentile_quickselect_handles_duplicates_and_nan(base in vec(-10.0..10.0f64, 2..40), dup_every in 1..5usize, p in 0.0..100.0f64) {
        // Heavy duplication plus an injected NaN stresses the all-equal
        // partition path; the result must still match the sorted reference.
        let mut xs: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(i, v)| if i % dup_every == 0 { base[0] } else { *v })
            .collect();
        xs.push(f64::NAN);
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = p.clamp(0.0, 100.0) / 100.0 * (sorted.len() - 1) as f64;
        let (lo, hi) = (rank.floor() as usize, rank.ceil() as usize);
        let expect = if lo == hi {
            sorted[lo]
        } else {
            let w = rank - lo as f64;
            sorted[lo] * (1.0 - w) + sorted[hi] * w
        };
        prop_assert_eq!(percentile(&xs, p).to_bits(), expect.to_bits());
    }

    #[test]
    fn fused_fit_matches_two_pass_reference(xs in finite_xs(), noise in vec(-1.0..1.0f64, 40), slope in -50.0..50.0f64, intercept in -10.0..10.0f64) {
        // Reference: textbook two-pass OLS (means, then centred moments).
        let ys: Vec<f64> = xs.iter().zip(&noise).map(|(x, n)| slope * x + intercept + n).collect();
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        let mx = xs.iter().sum::<f64>() / n as f64;
        let my = ys.iter().sum::<f64>() / n as f64;
        let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let ref_slope = sxy / sxx;
        let ref_int = my - ref_slope * mx;
        let f = fit(xs, ys).unwrap();
        let scale = ref_slope.abs().max(1.0);
        prop_assert!((f.line.slope - ref_slope).abs() < 1e-9 * scale, "slope {} vs {}", f.line.slope, ref_slope);
        prop_assert!((f.line.intercept - ref_int).abs() < 1e-6 * ref_int.abs().max(1.0));
    }

    #[test]
    fn mare_is_scale_invariant(pred in vec(0.1..1e3f64, 1..30), scale in 0.1..100.0f64) {
        let meas: Vec<f64> = pred.iter().map(|p| p * 1.1).collect();
        let a = mean_abs_rel_error(&pred, &meas);
        let scaled_p: Vec<f64> = pred.iter().map(|p| p * scale).collect();
        let scaled_m: Vec<f64> = meas.iter().map(|m| m * scale).collect();
        let b = mean_abs_rel_error(&scaled_p, &scaled_m);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn ratio_curve_is_sorted(pred in vec(0.1..1e3f64, 2..50)) {
        let meas = vec![1.0; pred.len()];
        let pts = ratio_curve(&pred, &meas, &[0.0, 25.0, 50.0, 75.0, 100.0]);
        for w in pts.windows(2) {
            prop_assert!(w[0].ratio <= w[1].ratio + 1e-12);
        }
    }

    #[test]
    fn accum_merge_is_associative_in_value(xs in finite_xs(), noise in vec(-1.0..1.0f64, 40), c1 in 1..20usize, c2 in 1..20usize) {
        // Floating-point merging is not bit-associative, but the *value*
        // must not depend on the association: ((a+b)+c) and (a+(b+c)) agree
        // to relative tolerance and to exact sample counts.
        let ys: Vec<f64> = xs.iter().zip(&noise).map(|(x, n)| 3.0 * x + 1.0 + n).collect();
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        let cut1 = 1 + c1 % (n - 1);
        let cut2 = cut1 + c2 % (n - cut1);
        let part = |lo: usize, hi: usize| {
            let mut a = OlsAccum::new();
            a.push_all(&xs[lo..hi], &ys[lo..hi]);
            a
        };
        let (a, b, c) = (part(0, cut1), part(cut1, cut2), part(cut2, n));
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.min_y().to_bits(), right.min_y().to_bits());
        if let (Ok(fl), Ok(fr)) = (left.fit(), right.fit()) {
            let scale = fl.line.slope.abs().max(1.0);
            prop_assert!((fl.line.slope - fr.line.slope).abs() < 1e-9 * scale);
            prop_assert!((fl.line.intercept - fr.line.intercept).abs() < 1e-6 * fl.line.intercept.abs().max(1.0));
        }
    }

    #[test]
    fn accumulate_segments_is_cut_invariant_bitwise(len in 2..2600usize, seed in 0..1_000_000u64, c1 in 0..2600usize, c2 in 0..2600usize) {
        // The virtual concatenation places chunk boundaries by global row
        // index, so *any* segmentation of the same rows yields the exact
        // same accumulator state — across FIT_CHUNK boundaries included.
        let xs: Vec<f64> = (0..len).map(|i| ((i as u64 * 2654435761 + seed) % 10007) as f64 + 1.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.75 * x + 0.5).collect();
        let mut flat = OlsAccum::new();
        flat.accumulate(&xs, &ys);
        let (mut a, mut b) = (c1 % (len + 1), c2 % (len + 1));
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let mut split = OlsAccum::new();
        split.accumulate_segments([
            (&xs[..a], &ys[..a]),
            (&xs[a..b], &ys[a..b]),
            (&xs[b..], &ys[b..]),
        ]);
        prop_assert_eq!(split, flat);
    }

    #[test]
    fn worker_partials_reproduce_serial_accumulate_bitwise(len in 1..3100usize, seed in 0..1_000_000u64) {
        // The parallel contract: chunk accumulators computed independently
        // (any worker could own any chunk) and folded in chunk-index order
        // are bit-identical to the serial accumulate — and, within one
        // chunk, to the historical plain serial sweep.
        let xs: Vec<f64> = (0..len).map(|i| ((i as u64 * 48271 + seed) % 9973) as f64 * 0.5 + 1.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.3 * x + 7.0).collect();
        let mut serial = OlsAccum::new();
        serial.accumulate(&xs, &ys);
        let partials: Vec<OlsAccum> = xs
            .chunks(FIT_CHUNK)
            .zip(ys.chunks(FIT_CHUNK))
            .map(|(cx, cy)| {
                let mut p = OlsAccum::new();
                p.push_all(cx, cy);
                p
            })
            .collect();
        let mut folded = OlsAccum::new();
        for p in &partials {
            folded.merge(p);
        }
        prop_assert_eq!(folded, serial);
        if (2..=FIT_CHUNK).contains(&len) {
            let f = fit(&xs, &ys).unwrap();
            prop_assert_eq!(folded.fit().unwrap(), f);
        }
    }

    #[test]
    fn huber_chunked_irls_matches_serial_reference(xs in finite_xs(), noise in vec(-0.5..0.5f64, 40), out_at in 0..40usize, out_mag in 5.0..50.0f64) {
        // fit_huber assembles each IRLS round from per-chunk WlsAccum
        // partials; a straight serial two-pass weighted-sum IRLS must
        // converge to the same line.
        let n = xs.len().min(noise.len());
        let mut ys: Vec<f64> = xs[..n].iter().zip(&noise).map(|(x, e)| 2.0 * x + 5.0 + e).collect();
        ys[out_at % n] += out_mag * 1e3;
        let xs = &xs[..n];
        let f = fit_huber(xs, &ys).unwrap();
        let r = huber_reference(xs, &ys);
        let scale = r.slope.abs().max(1.0);
        prop_assert!((f.line.slope - r.slope).abs() < 1e-6 * scale, "slope {} vs {}", f.line.slope, r.slope);
        prop_assert!((f.line.intercept - r.intercept).abs() < 1e-4 * r.intercept.abs().max(1.0));
    }

    #[test]
    fn wls_merge_is_associative_in_value(xs in finite_xs(), wseed in vec(0.1..2.0f64, 40), c in 1..39usize) {
        let n = xs.len().min(wseed.len());
        let ys: Vec<f64> = xs[..n].iter().map(|x| 0.75 * x - 2.0).collect();
        let cut = 1 + c % (n - 1);
        let mut whole = WlsAccum::new();
        let mut lo = WlsAccum::new();
        let mut hi = WlsAccum::new();
        for (i, ((x, y), w)) in xs[..n].iter().zip(&ys).zip(&wseed).enumerate() {
            whole.push(*x, *y, *w);
            if i < cut {
                lo.push(*x, *y, *w);
            } else {
                hi.push(*x, *y, *w);
            }
        }
        lo.merge(&hi);
        prop_assert_eq!(lo.count(), whole.count());
        if let (Ok(lm), Ok(lw)) = (lo.line(), whole.line()) {
            prop_assert!((lm.slope - lw.slope).abs() < 1e-9 * lw.slope.abs().max(1.0));
            prop_assert!((lm.intercept - lw.intercept).abs() < 1e-6 * lw.intercept.abs().max(1.0));
        }
    }
}

/// The pre-accumulator IRLS: serial two-pass weighted sums per round, the
/// same MAD sigma and Huber weights as `fit_huber`.
fn huber_reference(xs: &[f64], ys: &[f64]) -> Line {
    let mut line = fit(xs, ys).unwrap().line;
    for _ in 0..25 {
        let residuals: Vec<f64> = xs.iter().zip(ys).map(|(x, y)| y - line.eval(*x)).collect();
        let med = median(&residuals);
        let dev: Vec<f64> = residuals.iter().map(|r| (r - med).abs()).collect();
        let sigma = 1.4826 * median(&dev);
        if sigma <= 0.0 || !sigma.is_finite() {
            break;
        }
        let ws: Vec<f64> = residuals
            .iter()
            .map(|r| {
                let u = (r / sigma).abs();
                if u <= HUBER_K {
                    1.0
                } else {
                    HUBER_K / u
                }
            })
            .collect();
        let sw: f64 = ws.iter().sum();
        let swx: f64 = ws.iter().zip(xs).map(|(w, x)| w * x).sum();
        let swy: f64 = ws.iter().zip(ys).map(|(w, y)| w * y).sum();
        let (mx, my) = (swx / sw, swy / sw);
        let sxx: f64 = ws
            .iter()
            .zip(xs)
            .map(|(w, x)| w * (x - mx) * (x - mx))
            .sum();
        let sxy: f64 = ws
            .iter()
            .zip(xs.iter().zip(ys))
            .map(|(w, (x, y))| w * (x - mx) * (y - my))
            .sum();
        if sxx == 0.0 {
            break;
        }
        let slope = sxy / sxx;
        let next = Line::new(slope, my - slope * mx);
        let moved = (next.slope - line.slope)
            .abs()
            .max((next.intercept - line.intercept).abs());
        let scale = line.slope.abs().max(line.intercept.abs()).max(1e-300);
        line = next;
        if moved / scale < 1e-10 {
            break;
        }
    }
    line
}
