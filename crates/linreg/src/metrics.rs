//! Prediction error metrics and the S-curve presentation used throughout the
//! paper's evaluation (Figures 11–14).

/// Mean absolute relative error: `mean(|pred - measured| / measured)`.
///
/// This is the paper's headline "error" metric (e.g. "7% error" for the KW
/// model). Pairs with non-positive measurements are skipped.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// let e = dnnperf_linreg::mean_abs_rel_error(&[11.0, 9.0], &[10.0, 10.0]);
/// assert!((e - 0.1).abs() < 1e-12);
/// ```
pub fn mean_abs_rel_error(predicted: &[f64], measured: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        measured.len(),
        "mean_abs_rel_error: length mismatch"
    );
    let mut sum = 0.0;
    let mut n = 0usize;
    for (p, m) in predicted.iter().zip(measured) {
        if *m > 0.0 {
            sum += (p - m).abs() / m;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Linear-interpolated percentile of a sample, `p` in `[0, 100]`.
///
/// Returns `f64::NAN` for an empty sample. `NaN` samples are ordered by
/// [`f64::total_cmp`] (after every finite value and `+inf`), so a sample
/// containing `NaN` never panics — `NaN`s simply occupy the top ranks,
/// the same total order the predictor's clustering code uses.
///
/// # Examples
///
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(dnnperf_linreg::percentile(&xs, 0.0), 1.0);
/// assert_eq!(dnnperf_linreg::percentile(&xs, 100.0), 4.0);
/// assert_eq!(dnnperf_linreg::percentile(&xs, 50.0), 2.5);
/// ```
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (xs.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    // Quickselect (expected O(n)) instead of a full O(n log n) sort per
    // call: `select_nth` places the `lo`-th order statistic (under
    // `total_cmp`) at index `lo` and partitions everything greater to its
    // right. The `hi`-th order statistic, when needed, is then the
    // `total_cmp`-minimum of that right partition (`hi == lo + 1`). The
    // values are the same order statistics the sort-based implementation
    // read, so the interpolated result is bit-identical.
    let mut scratch: Vec<f64> = xs.to_vec();
    select_nth(&mut scratch, lo);
    let lo_val = scratch[lo];
    if lo == hi {
        return lo_val;
    }
    let hi_val = scratch[lo + 1..]
        .iter()
        .copied()
        .reduce(|a, b| if b.total_cmp(&a).is_lt() { b } else { a })
        .unwrap_or(lo_val);
    let w = rank - lo as f64;
    lo_val * (1.0 - w) + hi_val * w
}

/// In-place quickselect under [`f64::total_cmp`]: after the call, `v[k]`
/// holds the `k`-th order statistic, everything before it compares
/// less-or-equal and everything after it compares greater-or-equal.
///
/// Deterministic median-of-three pivoting with Hoare partitioning; the
/// median is swapped into the window head so the classic `j < hi`
/// termination guarantee holds even on all-equal runs.
fn select_nth(v: &mut [f64], k: usize) {
    let mut lo = 0usize;
    let mut hi = v.len() - 1;
    while lo < hi {
        let j = partition(v, lo, hi);
        if k <= j {
            hi = j;
        } else {
            lo = j + 1;
        }
    }
}

/// Hoare partition of `v[lo..=hi]` around the median of its first, middle
/// and last elements. Returns `j` in `[lo, hi)` such that every element of
/// `v[lo..=j]` is `<=` every element of `v[j+1..=hi]` under `total_cmp`.
fn partition(v: &mut [f64], lo: usize, hi: usize) -> usize {
    let mid = lo + (hi - lo) / 2;
    // Sort (v[lo], v[mid], v[hi]) then move the median to the head.
    if v[mid].total_cmp(&v[lo]).is_lt() {
        v.swap(mid, lo);
    }
    if v[hi].total_cmp(&v[lo]).is_lt() {
        v.swap(hi, lo);
    }
    if v[hi].total_cmp(&v[mid]).is_lt() {
        v.swap(hi, mid);
    }
    v.swap(lo, mid);
    let pivot = v[lo];
    let mut i = lo as isize - 1;
    let mut j = hi as isize + 1;
    loop {
        loop {
            i += 1;
            if v[i as usize].total_cmp(&pivot).is_ge() {
                break;
            }
        }
        loop {
            j -= 1;
            if v[j as usize].total_cmp(&pivot).is_le() {
                break;
            }
        }
        if i >= j {
            return j as usize;
        }
        v.swap(i as usize, j as usize);
    }
}

/// Median of a sample (50th percentile).
///
/// # Examples
///
/// ```
/// assert_eq!(dnnperf_linreg::median(&[3.0, 1.0, 2.0]), 2.0);
/// ```
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// One point of an S-curve: the predicted/measured ratio at a position in the
/// sorted test set (X axis of Figures 11–14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SCurvePoint {
    /// Position in the sorted test set, in percent `[0, 100]`.
    pub percent: f64,
    /// Predicted time divided by measured time at that position.
    pub ratio: f64,
}

/// Computes the sorted predicted/measured ratio curve the paper plots as an
/// "S-curve", sampled at the given percentages.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// let curve = dnnperf_linreg::ratio_curve(
///     &[1.0, 2.0, 3.0],
///     &[1.0, 1.0, 1.0],
///     &[0.0, 50.0, 100.0],
/// );
/// assert_eq!(curve[0].ratio, 1.0);
/// assert_eq!(curve[2].ratio, 3.0);
/// ```
pub fn ratio_curve(predicted: &[f64], measured: &[f64], percents: &[f64]) -> Vec<SCurvePoint> {
    assert_eq!(
        predicted.len(),
        measured.len(),
        "ratio_curve: length mismatch"
    );
    let ratios: Vec<f64> = predicted
        .iter()
        .zip(measured)
        .filter(|(_, m)| **m > 0.0)
        .map(|(p, m)| p / m)
        .collect();
    percents
        .iter()
        .map(|&p| SCurvePoint {
            percent: p,
            ratio: percentile(&ratios, p),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mare_zero_for_perfect_predictions() {
        assert_eq!(mean_abs_rel_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mare_skips_nonpositive_measurements() {
        let e = mean_abs_rel_error(&[1.0, 5.0], &[0.0, 4.0]);
        assert!((e - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mare_empty_is_zero() {
        assert_eq!(mean_abs_rel_error(&[], &[]), 0.0);
    }

    #[test]
    fn percentile_empty_is_nan() {
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn percentile_with_nan_samples_does_not_panic() {
        // NaNs sort after +inf under total_cmp, so low percentiles are
        // unaffected and the top ranks absorb the NaNs.
        let xs = [2.0, f64::NAN, 1.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert!(percentile(&xs, 100.0).is_nan());
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        assert_eq!(percentile(&[1.0, 2.0], -5.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], 200.0), 2.0);
    }

    #[test]
    fn percentile_singleton() {
        assert_eq!(percentile(&[42.0], 75.0), 42.0);
    }

    #[test]
    fn median_even_sample_interpolates() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn ratio_curve_is_monotone() {
        let pred = [0.5, 2.0, 1.0, 1.5, 0.9];
        let meas = [1.0; 5];
        let pts = ratio_curve(&pred, &meas, &[0.0, 25.0, 50.0, 75.0, 100.0]);
        for w in pts.windows(2) {
            assert!(w[0].ratio <= w[1].ratio);
        }
        assert_eq!(pts[0].ratio, 0.5);
        assert_eq!(pts[4].ratio, 2.0);
    }
}
