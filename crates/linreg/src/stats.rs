//! Basic descriptive statistics used by the regression and metric code.

/// Arithmetic mean of a sample.
///
/// Returns `0.0` for an empty slice so that callers aggregating over possibly
/// empty groups do not have to special-case them.
///
/// # Examples
///
/// ```
/// assert_eq!(dnnperf_linreg::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of a sample (divides by `n`, not `n - 1`).
///
/// # Examples
///
/// ```
/// let v = dnnperf_linreg::variance(&[1.0, 3.0]);
/// assert_eq!(v, 1.0);
/// ```
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Pearson correlation coefficient between two equal-length samples.
///
/// Returns `0.0` if either sample is constant (zero variance) or empty.
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths.
///
/// # Examples
///
/// ```
/// let r = dnnperf_linreg::pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: sample length mismatch");
    if xs.is_empty() {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_of_singleton() {
        assert_eq!(mean(&[7.5]), 7.5);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[4.0, 4.0, 4.0]), 0.0);
    }

    #[test]
    fn variance_known_value() {
        // Population variance of {2, 4, 4, 4, 5, 5, 7, 9} is 4.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let r = pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]);
        assert!((r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_sample_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pearson_length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
