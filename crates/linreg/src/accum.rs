//! Mergeable Youngs–Cramer regression accumulators.
//!
//! [`crate::fit`] sweeps its samples once with Welford-style centred-moment
//! updates. That single pass is exactly a left fold, and this module turns
//! the fold state into a first-class value: an [`OlsAccum`] can absorb
//! samples one at a time ([`OlsAccum::push`]) or absorb another accumulator
//! wholesale ([`OlsAccum::merge`], Chan et al.'s pairwise update). Partial
//! accumulators computed over disjoint sample ranges therefore compose into
//! the same regression a serial sweep would produce — which is what lets
//! model training split one fit across worker threads and what the online
//! refresh planned in ROADMAP item 3 needs to fold new rows into old fits.
//!
//! # Determinism contract
//!
//! Floating-point merging is *not* bit-associative: `merge(merge(a, b), c)`
//! and `merge(a, merge(b, c))` may differ in the last ulp. Bit-identical
//! results across thread counts therefore come from a canonical reduction
//! tree, not from merge order freedom:
//!
//! * samples are cut into chunks of exactly [`FIT_CHUNK`] rows, in sample
//!   order — the chunk boundaries depend only on the sample count, never on
//!   how many workers participate;
//! * each chunk is accumulated serially by [`OlsAccum::push_all`];
//! * chunk accumulators are folded left-to-right in chunk-index order.
//!
//! [`OlsAccum::accumulate`] and [`OlsAccum::accumulate_segments`] implement
//! that decomposition serially; a parallel caller reproduces it by computing
//! chunk accumulators on any workers it likes and merging them in chunk
//! order. Both sides produce bit-identical fits because they execute the
//! same floating-point operations in the same order. With a single chunk
//! (`n <= FIT_CHUNK`) the result is additionally bit-identical to the plain
//! serial sweep [`crate::fit`] has always performed.

use crate::ols::{Fit, FitError, Line};

/// Fixed row-chunk size for the canonical reduction tree.
///
/// Every chunked accumulation in the workspace — serial or parallel — cuts
/// its input at multiples of this many rows, so the floating-point reduction
/// shape is a function of the sample count alone. Changing this value
/// changes fitted coefficients in the last ulp for `n > FIT_CHUNK`; it is a
/// model-output-affecting constant, not a tuning knob.
pub const FIT_CHUNK: usize = 1024;

/// Mergeable single-pass state of a one-variable OLS fit.
///
/// Holds the sample count, running means of `x` and `y`, centred second
/// moments `m2x`/`m2y`, the co-moment `cxy`, and the minimum observed `y`
/// (needed by the bounded-intercept fits). All updates are shift-invariant,
/// so FLOP-scale magnitudes do not cancel catastrophically.
///
/// # Examples
///
/// ```
/// use dnnperf_linreg::OlsAccum;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [3.0, 5.0, 7.0, 9.0];
/// let mut left = OlsAccum::new();
/// left.push_all(&xs[..2], &ys[..2]);
/// let mut right = OlsAccum::new();
/// right.push_all(&xs[2..], &ys[2..]);
/// left.merge(&right);
/// let fit = left.fit().unwrap();
/// assert!((fit.line.slope - 2.0).abs() < 1e-12);
/// assert!((fit.line.intercept - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OlsAccum {
    /// Sample count as a float (the Welford divisor).
    n: f64,
    /// Sample count as an integer (reported in [`Fit::n`]).
    count: usize,
    mx: f64,
    my: f64,
    m2x: f64,
    m2y: f64,
    cxy: f64,
    min_y: f64,
}

impl Default for OlsAccum {
    fn default() -> Self {
        OlsAccum::new()
    }
}

impl OlsAccum {
    /// An empty accumulator (zero samples).
    pub fn new() -> Self {
        OlsAccum {
            n: 0.0,
            count: 0,
            mx: 0.0,
            my: 0.0,
            m2x: 0.0,
            m2y: 0.0,
            cxy: 0.0,
            min_y: f64::INFINITY,
        }
    }

    /// Number of samples absorbed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Minimum `y` observed so far; `+inf` when empty.
    pub fn min_y(&self) -> f64 {
        self.min_y
    }

    /// Absorbs one `(x, y)` sample.
    ///
    /// The update sequence is the exact Youngs–Cramer sweep [`crate::fit`]
    /// performs, so pushing a slice element-by-element reproduces the serial
    /// fit bit-for-bit.
    pub fn push(&mut self, x: f64, y: f64) {
        self.count += 1;
        self.n += 1.0;
        let dx = x - self.mx;
        let dy = y - self.my;
        self.mx += dx / self.n;
        self.my += dy / self.n;
        self.m2x += dx * (x - self.mx);
        self.m2y += dy * (y - self.my);
        self.cxy += dx * (y - self.my);
        self.min_y = self.min_y.min(y);
    }

    /// Absorbs paired samples by straight serial pushes — **no** internal
    /// chunking. This is the building block parallel callers use to compute
    /// one canonical chunk; for whole inputs use [`OlsAccum::accumulate`].
    ///
    /// Extra elements of the longer slice are ignored (callers validate
    /// lengths; see [`crate::fit`]).
    pub fn push_all(&mut self, xs: &[f64], ys: &[f64]) {
        for (x, y) in xs.iter().zip(ys) {
            self.push(*x, *y);
        }
    }

    /// Merges another accumulator into this one (Chan et al. pairwise
    /// update for means, centred moments and the co-moment).
    ///
    /// Merging is exact in expectation but not bit-associative; see the
    /// module docs for the canonical chunk discipline that yields
    /// bit-identical results across thread counts.
    pub fn merge(&mut self, other: &OlsAccum) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n;
        let n2 = other.n;
        let n = n1 + n2;
        let dx = other.mx - self.mx;
        let dy = other.my - self.my;
        let f = n1 * n2 / n;
        self.m2x += other.m2x + dx * dx * f;
        self.m2y += other.m2y + dy * dy * f;
        self.cxy += other.cxy + dx * dy * f;
        self.mx += dx * n2 / n;
        self.my += dy * n2 / n;
        self.n = n;
        self.count += other.count;
        self.min_y = self.min_y.min(other.min_y);
    }

    /// Absorbs paired slices through the canonical reduction tree: rows are
    /// cut at multiples of [`FIT_CHUNK`], each chunk is accumulated
    /// serially, and the chunk accumulators are merged in index order.
    ///
    /// Call this on a fresh accumulator — chunk boundaries restart at the
    /// call, so appending to a non-empty accumulator produces a different
    /// (still deterministic) reduction shape.
    pub fn accumulate(&mut self, xs: &[f64], ys: &[f64]) {
        for (cx, cy) in xs.chunks(FIT_CHUNK).zip(ys.chunks(FIT_CHUNK)) {
            let mut chunk = OlsAccum::new();
            chunk.push_all(cx, cy);
            self.merge(&chunk);
        }
    }

    /// Like [`OlsAccum::accumulate`] but over a *virtual concatenation* of
    /// `(xs, ys)` segments: chunk boundaries fall at multiples of
    /// [`FIT_CHUNK`] rows of the concatenation, crossing segment boundaries
    /// freely. Pooled fits over per-kernel row ranges use this so the
    /// reduction shape depends only on the total row count.
    pub fn accumulate_segments<'a, I>(&mut self, segments: I)
    where
        I: IntoIterator<Item = (&'a [f64], &'a [f64])>,
    {
        let mut chunk = OlsAccum::new();
        for (xs, ys) in segments {
            for (x, y) in xs.iter().zip(ys) {
                chunk.push(*x, *y);
                if chunk.count == FIT_CHUNK {
                    self.merge(&chunk);
                    chunk = OlsAccum::new();
                }
            }
        }
        if chunk.count > 0 {
            self.merge(&chunk);
        }
    }

    /// Finalises the accumulated state into a [`Fit`].
    ///
    /// # Errors
    ///
    /// [`FitError::TooFewPoints`] with fewer than two samples;
    /// [`FitError::DegenerateX`] if every `x` was identical (identical xs
    /// pin `mx` after the first sample, so `m2x` is exactly zero — in every
    /// chunk, and the merge's `dx` terms are zero too).
    pub fn fit(&self) -> Result<Fit, FitError> {
        if self.count < 2 {
            return Err(FitError::TooFewPoints { got: self.count });
        }
        if self.m2x == 0.0 {
            return Err(FitError::DegenerateX);
        }
        let slope = self.cxy / self.m2x;
        let line = Line::new(slope, self.my - slope * self.mx);
        // ss_res = m2y − slope·cxy exactly for the OLS line; `max(0.0)`
        // guards the tiny negatives floating point produces on near-perfect
        // fits. Constant ys give m2y = cxy = 0: a perfect constant fit.
        let r2 = if self.m2y == 0.0 {
            1.0
        } else {
            1.0 - (self.m2y - slope * self.cxy).max(0.0) / self.m2y
        };
        Ok(Fit {
            line,
            r2,
            n: self.count,
        })
    }
}

/// Bounded-intercept finalisation over segmented samples: the segment-level
/// counterpart of [`crate::fit_bounded_intercept`], taking the already
/// accumulated state plus the segments it came from (needed only when the
/// intercept must be clamped and the slope refitted).
///
/// The clamp refit and its R² are straight serial passes in segment order —
/// identical floating-point sequences to the historical concatenated-slice
/// implementation at any sample count.
///
/// # Errors
///
/// Same conditions as [`crate::fit`].
pub fn fit_bounded_segments(
    acc: &OlsAccum,
    segments: &[(&[f64], &[f64])],
) -> Result<Fit, FitError> {
    let f = acc.fit()?;
    let min_y = acc.min_y().max(0.0);
    if f.line.intercept >= 0.0 && f.line.intercept <= min_y {
        return Ok(f);
    }
    let b = f.line.intercept.clamp(0.0, min_y);
    // Refit through the origin on the shifted data without materialising
    // the shifted vector: the through-origin slope is Σx(y−b) / Σx².
    let mut sxx = 0.0f64;
    let mut sxy = 0.0f64;
    for (xs, ys) in segments {
        for (x, y) in xs.iter().zip(*ys) {
            sxx += x * x;
            sxy += x * (y - b);
        }
    }
    if sxx == 0.0 {
        return Err(FitError::DegenerateX);
    }
    let slope = (sxy / sxx).max(0.0);
    let line = Line::new(slope, b);
    Ok(Fit {
        line,
        r2: r_squared_segments(segments, line),
        n: acc.count(),
    })
}

/// Fused single-pass R² over segmented samples (Welford total sum of
/// squares + residual sum of squares in one sweep), visiting rows in
/// segment order — the same sequence the concatenated-slice
/// `ols::r_squared` has always executed.
fn r_squared_segments(segments: &[(&[f64], &[f64])], line: Line) -> f64 {
    let mut n = 0.0f64;
    let mut my = 0.0f64;
    let mut ss_tot = 0.0f64;
    let mut ss_res = 0.0f64;
    for (xs, ys) in segments {
        for (x, y) in xs.iter().zip(*ys) {
            n += 1.0;
            let dy = y - my;
            my += dy / n;
            ss_tot += dy * (y - my);
            let e = y - line.eval(*x);
            ss_res += e * e;
        }
    }
    if ss_tot == 0.0 {
        // All y identical: the fit is perfect iff the residuals are zero.
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Mergeable single-pass state of a *weighted* one-variable least-squares
/// fit (West's weighted Welford updates), the per-iteration kernel of
/// Huber/IRLS: each IRLS round computes fresh weights and needs one
/// weighted fit, and this accumulator lets that fit be assembled from
/// per-chunk partials merged in fixed index order exactly like
/// [`OlsAccum`].
///
/// Samples with non-positive weight are skipped: they contribute nothing
/// to any weighted sum, and admitting them would poison the running means
/// with divisions by a zero weight total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WlsAccum {
    sw: f64,
    count: usize,
    mx: f64,
    my: f64,
    m2x: f64,
    cxy: f64,
}

impl Default for WlsAccum {
    fn default() -> Self {
        WlsAccum::new()
    }
}

impl WlsAccum {
    /// An empty weighted accumulator.
    pub fn new() -> Self {
        WlsAccum {
            sw: 0.0,
            count: 0,
            mx: 0.0,
            my: 0.0,
            m2x: 0.0,
            cxy: 0.0,
        }
    }

    /// Total weight absorbed so far.
    pub fn weight(&self) -> f64 {
        self.sw
    }

    /// Number of positively-weighted samples absorbed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Absorbs one `(x, y)` sample with weight `w` (ignored unless
    /// `w > 0`).
    pub fn push(&mut self, x: f64, y: f64, w: f64) {
        if w <= 0.0 {
            return;
        }
        self.count += 1;
        self.sw += w;
        let dx = x - self.mx;
        let dy = y - self.my;
        self.mx += dx * w / self.sw;
        self.my += dy * w / self.sw;
        self.m2x += w * dx * (x - self.mx);
        self.cxy += w * dx * (y - self.my);
    }

    /// Merges another weighted accumulator into this one (weight-scaled
    /// Chan update). Subject to the same canonical chunk discipline as
    /// [`OlsAccum::merge`].
    pub fn merge(&mut self, other: &WlsAccum) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let w1 = self.sw;
        let w2 = other.sw;
        let w = w1 + w2;
        let dx = other.mx - self.mx;
        let dy = other.my - self.my;
        let f = w1 * w2 / w;
        self.m2x += other.m2x + dx * dx * f;
        self.cxy += other.cxy + dx * dy * f;
        self.mx += dx * w2 / w;
        self.my += dy * w2 / w;
        self.sw = w;
        self.count += other.count;
    }

    /// Absorbs `(x, y, w)` triples through the canonical reduction tree:
    /// rows cut at multiples of [`FIT_CHUNK`] (counting *all* rows, so
    /// chunk boundaries are weight-independent), chunks merged in index
    /// order.
    pub fn accumulate(&mut self, xs: &[f64], ys: &[f64], ws: &[f64]) {
        for ((cx, cy), cw) in xs
            .chunks(FIT_CHUNK)
            .zip(ys.chunks(FIT_CHUNK))
            .zip(ws.chunks(FIT_CHUNK))
        {
            let mut chunk = WlsAccum::new();
            for ((x, y), w) in cx.iter().zip(cy).zip(cw) {
                chunk.push(*x, *y, *w);
            }
            self.merge(&chunk);
        }
    }

    /// Finalises the weighted state into a [`Line`].
    ///
    /// # Errors
    ///
    /// [`FitError::DegenerateX`] if no positive weight was absorbed or all
    /// weighted `x` are identical.
    pub fn line(&self) -> Result<Line, FitError> {
        if self.sw <= 0.0 || self.m2x == 0.0 {
            return Err(FitError::DegenerateX);
        }
        let slope = self.cxy / self.m2x;
        Ok(Line::new(slope, self.my - slope * self.mx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ols::fit;

    #[test]
    fn empty_accum_reports_too_few() {
        assert_eq!(
            OlsAccum::new().fit(),
            Err(FitError::TooFewPoints { got: 0 })
        );
    }

    #[test]
    fn push_matches_serial_fit_bitwise() {
        let xs: Vec<f64> = (0..200).map(|i| 1.0 + (i % 17) as f64 * 3.5).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x + 0.75).collect();
        let mut acc = OlsAccum::new();
        acc.push_all(&xs, &ys);
        assert_eq!(acc.fit().unwrap(), fit(&xs, &ys).unwrap());
    }

    #[test]
    fn merge_of_splits_recovers_the_line() {
        let xs: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -0.5 * x + 10.0).collect();
        for split in [1, 7, 250, 499] {
            let mut a = OlsAccum::new();
            a.push_all(&xs[..split], &ys[..split]);
            let mut b = OlsAccum::new();
            b.push_all(&xs[split..], &ys[split..]);
            a.merge(&b);
            let f = a.fit().unwrap();
            assert!((f.line.slope + 0.5).abs() < 1e-9, "split {split}");
            assert!((f.line.intercept - 10.0).abs() < 1e-7, "split {split}");
            assert_eq!(f.n, 500);
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OlsAccum::new();
        a.push_all(&[1.0, 2.0, 3.0], &[1.0, 4.0, 9.0]);
        let before = a;
        a.merge(&OlsAccum::new());
        assert_eq!(a, before);
        let mut e = OlsAccum::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn degenerate_x_survives_merging() {
        let mut a = OlsAccum::new();
        a.push_all(&[2.0, 2.0], &[1.0, 3.0]);
        let mut b = OlsAccum::new();
        b.push_all(&[2.0, 2.0], &[5.0, 7.0]);
        a.merge(&b);
        assert_eq!(a.fit(), Err(FitError::DegenerateX));
    }

    #[test]
    fn accumulate_single_chunk_is_bit_identical_to_fit() {
        let xs: Vec<f64> = (0..FIT_CHUNK)
            .map(|i| (i as f64).sin() * 50.0 + 60.0)
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.25 * x + 3.0).collect();
        let mut acc = OlsAccum::new();
        acc.accumulate(&xs, &ys);
        assert_eq!(acc.fit().unwrap(), fit(&xs, &ys).unwrap());
    }

    #[test]
    fn segments_match_concatenation_chunking() {
        // The virtual concatenation must place chunk boundaries by global
        // row index, so splitting the same rows into arbitrary segments
        // changes nothing.
        let xs: Vec<f64> = (0..3000).map(|i| (i % 97) as f64 + 1.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 * x + 2.0).collect();
        let mut whole = OlsAccum::new();
        whole.accumulate_segments([(&xs[..], &ys[..])]);
        let mut flat = OlsAccum::new();
        flat.accumulate(&xs, &ys);
        assert_eq!(whole, flat);
        for cut in [1usize, 512, 1024, 1500, 2999] {
            let mut split = OlsAccum::new();
            split.accumulate_segments([(&xs[..cut], &ys[..cut]), (&xs[cut..], &ys[cut..])]);
            assert_eq!(split, whole, "cut {cut}");
        }
    }

    #[test]
    fn bounded_segments_matches_bounded_slice() {
        let xs = [1.0, 2.0, 10.0];
        let ys = [0.5, 1.5, 11.0];
        let mut acc = OlsAccum::new();
        acc.accumulate(&xs, &ys);
        let seg = fit_bounded_segments(&acc, &[(&xs, &ys)]).unwrap();
        let flat = crate::fit_bounded_intercept(&xs, &ys).unwrap();
        assert_eq!(seg, flat);
        assert_eq!(seg.line.intercept, 0.0);
    }

    #[test]
    fn wls_unit_weights_match_ols() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        let ws = vec![1.0; xs.len()];
        let mut w = WlsAccum::new();
        w.accumulate(&xs, &ys, &ws);
        let line = w.line().unwrap();
        assert!((line.slope - 3.0).abs() < 1e-9);
        assert!((line.intercept + 7.0).abs() < 1e-7);
        assert_eq!(w.count(), 100);
    }

    #[test]
    fn wls_zero_weights_are_skipped() {
        let mut w = WlsAccum::new();
        w.push(1.0, 1.0, 0.0);
        w.push(5.0, 5.0, -2.0);
        assert_eq!(w.count(), 0);
        assert_eq!(w.line(), Err(FitError::DegenerateX));
    }

    #[test]
    fn wls_merge_matches_serial_pushes_within_a_chunk() {
        let xs: Vec<f64> = (0..64).map(|i| i as f64 * 1.5).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x + 2.0).collect();
        let ws: Vec<f64> = (0..64).map(|i| 0.25 + (i % 4) as f64 * 0.25).collect();
        let mut serial = WlsAccum::new();
        for ((x, y), w) in xs.iter().zip(&ys).zip(&ws) {
            serial.push(*x, *y, *w);
        }
        let mut a = WlsAccum::new();
        let mut b = WlsAccum::new();
        for ((x, y), w) in xs.iter().zip(&ys).zip(&ws).take(32) {
            a.push(*x, *y, *w);
        }
        for ((x, y), w) in xs.iter().zip(&ys).zip(&ws).skip(32) {
            b.push(*x, *y, *w);
        }
        a.merge(&b);
        let ls = serial.line().unwrap();
        let lm = a.line().unwrap();
        assert!((ls.slope - lm.slope).abs() < 1e-12);
        assert!((ls.intercept - lm.intercept).abs() < 1e-12);
    }
}
