//! One-variable ordinary least squares.
//!
//! All dnnperf performance models are built from [`fit`] (slope + intercept)
//! or [`fit_through_origin`] (slope only, used when the physical model forces
//! the line through zero, e.g. "zero work takes zero time on top of a known
//! launch overhead").

use std::error::Error;
use std::fmt;

/// A fitted line `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Line {
    /// Slope of the line; for time-vs-work fits this is seconds per unit of
    /// work, i.e. the reciprocal of the achieved throughput.
    pub slope: f64,
    /// Intercept of the line; for time-vs-work fits this absorbs fixed
    /// per-invocation overhead.
    pub intercept: f64,
}

impl Line {
    /// Creates a line from its two coefficients.
    ///
    /// # Examples
    ///
    /// ```
    /// let l = dnnperf_linreg::Line::new(2.0, 1.0);
    /// assert_eq!(l.eval(3.0), 7.0);
    /// ```
    pub fn new(slope: f64, intercept: f64) -> Self {
        Line { slope, intercept }
    }

    /// Evaluates the line at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

impl fmt::Display for Line {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "y = {:.6e} * x + {:.6e}", self.slope, self.intercept)
    }
}

/// The result of a least-squares fit: the [`Line`], its coefficient of
/// determination and the number of samples it was computed from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Fitted line.
    pub line: Line,
    /// Coefficient of determination in `[-inf, 1]`; `1.0` is a perfect fit.
    pub r2: f64,
    /// Number of samples used.
    pub n: usize,
}

impl Fit {
    /// Predicts `y` at `x` with the fitted line.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), dnnperf_linreg::FitError> {
    /// let f = dnnperf_linreg::fit(&[0.0, 1.0], &[1.0, 3.0])?;
    /// assert!((f.predict(2.0) - 5.0).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn predict(&self, x: f64) -> f64 {
        self.line.eval(x)
    }
}

/// Errors produced when a least-squares fit cannot be computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two samples were supplied.
    TooFewPoints {
        /// Number of samples that were supplied.
        got: usize,
    },
    /// All `x` values are identical, so the slope is undefined.
    DegenerateX,
    /// The two input slices have different lengths.
    LengthMismatch {
        /// Length of the `x` slice.
        xs: usize,
        /// Length of the `y` slice.
        ys: usize,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewPoints { got } => {
                write!(f, "need at least 2 samples to fit a line, got {got}")
            }
            FitError::DegenerateX => write!(f, "all x values are identical"),
            FitError::LengthMismatch { xs, ys } => {
                write!(f, "sample length mismatch: {xs} x values vs {ys} y values")
            }
        }
    }
}

impl Error for FitError {}

fn check_inputs(xs: &[f64], ys: &[f64]) -> Result<(), FitError> {
    if xs.len() != ys.len() {
        return Err(FitError::LengthMismatch {
            xs: xs.len(),
            ys: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(FitError::TooFewPoints { got: xs.len() });
    }
    Ok(())
}

/// Fused single-pass R²: Welford's update accumulates the total sum of
/// squares (shift-invariant, so large raw magnitudes such as FLOP counts
/// near `1e12` do not cancel catastrophically) while the residual sum of
/// squares is folded into the same loop. One sweep over the samples where
/// the old implementation took three.
fn r_squared(xs: &[f64], ys: &[f64], line: Line) -> f64 {
    let mut n = 0.0f64;
    let mut my = 0.0f64;
    let mut ss_tot = 0.0f64;
    let mut ss_res = 0.0f64;
    for (x, y) in xs.iter().zip(ys) {
        n += 1.0;
        let dy = y - my;
        my += dy / n;
        ss_tot += dy * (y - my);
        let e = y - line.eval(*x);
        ss_res += e * e;
    }
    if ss_tot == 0.0 {
        // All y identical: the fit is perfect iff the residuals are zero.
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Fits `y = slope * x + intercept` by ordinary least squares.
///
/// # Errors
///
/// Returns [`FitError::LengthMismatch`] if the slices differ in length,
/// [`FitError::TooFewPoints`] with fewer than two samples, and
/// [`FitError::DegenerateX`] if every `x` is identical.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dnnperf_linreg::FitError> {
/// let f = dnnperf_linreg::fit(&[1.0, 2.0, 3.0], &[3.0, 5.0, 7.0])?;
/// assert!((f.line.slope - 2.0).abs() < 1e-12);
/// assert!((f.line.intercept - 1.0).abs() < 1e-12);
/// assert!((f.r2 - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Fit, FitError> {
    check_inputs(xs, ys)?;
    // Fused single pass with Youngs–Cramer (Welford-style) co-moment
    // updates, routed through the mergeable accumulator so serial fits,
    // worker-split fits and incremental refreshes all share one canonical
    // floating-point sequence (see `accum` for the chunked reduction-tree
    // contract). The updates centre each sample against the running mean,
    // so the accumulation is shift-invariant and avoids the catastrophic
    // cancellation a raw `n·Σxy − Σx·Σy` formulation would suffer on
    // FLOP-scale inputs.
    let mut acc = crate::accum::OlsAccum::new();
    acc.accumulate(xs, ys);
    acc.fit()
}

/// Fits `y = slope * x` (no intercept) by least squares.
///
/// Used when the model demands `f(0) = 0`; the reported `r2` is still computed
/// against the mean of `y` so it remains comparable with [`fit`].
///
/// # Errors
///
/// Returns [`FitError::LengthMismatch`] if the slices differ in length,
/// [`FitError::TooFewPoints`] with fewer than one sample pair, and
/// [`FitError::DegenerateX`] if every `x` is zero.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dnnperf_linreg::FitError> {
/// let f = dnnperf_linreg::fit_through_origin(&[1.0, 2.0], &[2.0, 4.0])?;
/// assert!((f.line.slope - 2.0).abs() < 1e-12);
/// assert_eq!(f.line.intercept, 0.0);
/// # Ok(())
/// # }
/// ```
pub fn fit_through_origin(xs: &[f64], ys: &[f64]) -> Result<Fit, FitError> {
    if xs.len() != ys.len() {
        return Err(FitError::LengthMismatch {
            xs: xs.len(),
            ys: ys.len(),
        });
    }
    if xs.is_empty() {
        return Err(FitError::TooFewPoints { got: 0 });
    }
    // Fused single pass: both accumulators advance left-to-right in the
    // same order the old two-loop version used, so the sums (and hence the
    // slope) are bit-identical to the previous implementation.
    let mut sxx = 0.0f64;
    let mut sxy = 0.0f64;
    for (x, y) in xs.iter().zip(ys) {
        sxx += x * x;
        sxy += x * y;
    }
    if sxx == 0.0 {
        return Err(FitError::DegenerateX);
    }
    let line = Line::new(sxy / sxx, 0.0);
    Ok(Fit {
        line,
        r2: r_squared(xs, ys, line),
        n: xs.len(),
    })
}

/// Fits `y = slope * x + intercept` with the intercept constrained to
/// `[0, min(y)]`.
///
/// For time-vs-work data the intercept is a fixed per-invocation overhead:
/// it cannot be negative and cannot exceed the cheapest observed invocation.
/// When plain OLS lands outside that range (typically due to curvature or
/// within-group heterogeneity), the intercept is clamped and the slope
/// refitted through the origin on the shifted data.
///
/// # Errors
///
/// Same conditions as [`fit`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dnnperf_linreg::FitError> {
/// // Plain OLS on this data yields a negative intercept.
/// let f = dnnperf_linreg::fit_bounded_intercept(&[1.0, 2.0, 10.0], &[0.5, 1.5, 11.0])?;
/// assert!(f.line.intercept >= 0.0);
/// # Ok(())
/// # }
/// ```
pub fn fit_bounded_intercept(xs: &[f64], ys: &[f64]) -> Result<Fit, FitError> {
    check_inputs(xs, ys)?;
    let mut acc = crate::accum::OlsAccum::new();
    acc.accumulate(xs, ys);
    crate::accum::fit_bounded_segments(&acc, &[(xs, ys)])
}

/// Coefficients of a two-feature affine fit `y = a*x1 + b*x2 + c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneFit {
    /// Coefficient of the first feature.
    pub a: f64,
    /// Coefficient of the second feature.
    pub b: f64,
    /// Intercept.
    pub c: f64,
}

impl PlaneFit {
    /// Evaluates the fitted plane.
    pub fn eval(&self, x1: f64, x2: f64) -> f64 {
        self.a * x1 + self.b * x2 + self.c
    }
}

/// Fits `y = a*x1 + b*x2 + c` by least squares (3x3 normal equations).
///
/// # Errors
///
/// Returns [`FitError::LengthMismatch`] if the slices differ in length,
/// [`FitError::TooFewPoints`] with fewer than three samples, and
/// [`FitError::DegenerateX`] when the normal matrix is singular (e.g. the
/// features are collinear).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), dnnperf_linreg::FitError> {
/// let x1 = [1.0, 2.0, 3.0, 4.0];
/// let x2 = [1.0, 0.0, 1.0, 0.0];
/// let ys = [4.0, 5.0, 8.0, 9.0]; // y = 2*x1 + 1*x2 + 1
/// let p = dnnperf_linreg::fit_plane(&x1, &x2, &ys)?;
/// assert!((p.a - 2.0).abs() < 1e-9 && (p.b - 1.0).abs() < 1e-9 && (p.c - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn fit_plane(x1: &[f64], x2: &[f64], ys: &[f64]) -> Result<PlaneFit, FitError> {
    if x1.len() != ys.len() || x2.len() != ys.len() {
        return Err(FitError::LengthMismatch {
            xs: x1.len().min(x2.len()),
            ys: ys.len(),
        });
    }
    if ys.len() < 3 {
        return Err(FitError::TooFewPoints { got: ys.len() });
    }
    // Normal equations A^T A beta = A^T y with columns [x1, x2, 1].
    let n = ys.len() as f64;
    let (mut s11, mut s12, mut s1, mut s22, mut s2) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let (mut t1, mut t2, mut t0) = (0.0, 0.0, 0.0);
    for ((&a, &b), &y) in x1.iter().zip(x2).zip(ys) {
        s11 += a * a;
        s12 += a * b;
        s1 += a;
        s22 += b * b;
        s2 += b;
        t1 += a * y;
        t2 += b * y;
        t0 += y;
    }
    let mut m = [[s11, s12, s1, t1], [s12, s22, s2, t2], [s1, s2, n, t0]];
    // Gaussian elimination with partial pivoting.
    for col in 0..3 {
        // `(col..3).max_by(...)` with the last maximum winning ties,
        // written without the range-is-nonempty `expect`.
        let pivot = (col + 1..3).fold(col, |b, r| {
            if m[r][col].abs().total_cmp(&m[b][col].abs()).is_ge() {
                r
            } else {
                b
            }
        });
        m.swap(col, pivot);
        if m[col][col].abs() < 1e-30 {
            return Err(FitError::DegenerateX);
        }
        for row in 0..3 {
            if row != col {
                let factor = m[row][col] / m[col][col];
                let pivot_row = m[col];
                for (cell, pivot_cell) in m[row].iter_mut().zip(pivot_row).skip(col) {
                    *cell -= factor * pivot_cell;
                }
            }
        }
    }
    Ok(PlaneFit {
        a: m[0][3] / m[0][0],
        b: m[1][3] / m[1][1],
        c: m[2][3] / m[2][2],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.5 * x - 2.0).collect();
        let f = fit(&xs, &ys).unwrap();
        assert!((f.line.slope - 3.5).abs() < 1e-12);
        assert!((f.line.intercept + 2.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert_eq!(f.n, 20);
    }

    #[test]
    fn too_few_points() {
        assert_eq!(fit(&[1.0], &[1.0]), Err(FitError::TooFewPoints { got: 1 }));
    }

    #[test]
    fn degenerate_x() {
        assert_eq!(fit(&[2.0, 2.0], &[1.0, 3.0]), Err(FitError::DegenerateX));
    }

    #[test]
    fn length_mismatch() {
        assert_eq!(
            fit(&[1.0, 2.0], &[1.0]),
            Err(FitError::LengthMismatch { xs: 2, ys: 1 })
        );
    }

    #[test]
    fn through_origin_matches_expected() {
        // Least squares through origin: slope = sum(xy)/sum(x^2).
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.1, 5.9];
        let f = fit_through_origin(&xs, &ys).unwrap();
        let expected = (2.0 + 8.2 + 17.7) / 14.0;
        assert!((f.line.slope - expected).abs() < 1e-12);
    }

    #[test]
    fn through_origin_all_zero_x_is_degenerate() {
        assert_eq!(
            fit_through_origin(&[0.0, 0.0], &[1.0, 2.0]),
            Err(FitError::DegenerateX)
        );
    }

    #[test]
    fn noisy_fit_has_reasonable_r2() {
        // y = 2x with +-5% deterministic "noise".
        let xs: Vec<f64> = (1..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x * if i % 2 == 0 { 1.05 } else { 0.95 })
            .collect();
        let f = fit(&xs, &ys).unwrap();
        assert!((f.line.slope - 2.0).abs() < 0.1);
        assert!(f.r2 > 0.98, "r2 = {}", f.r2);
    }

    #[test]
    fn constant_y_perfect_fit_r2_is_one() {
        let f = fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(f.line.slope, 0.0);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn bounded_intercept_within_range_is_plain_ols() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [1.5, 2.5, 3.5]; // intercept 0.5, min y 1.5
        let plain = fit(&xs, &ys).unwrap();
        let bounded = fit_bounded_intercept(&xs, &ys).unwrap();
        assert_eq!(plain, bounded);
    }

    #[test]
    fn bounded_intercept_clamps_negative() {
        let xs = [1.0, 2.0, 10.0];
        let ys = [0.5, 1.5, 11.0];
        let f = fit_bounded_intercept(&xs, &ys).unwrap();
        assert_eq!(f.line.intercept, 0.0);
        assert!(f.line.slope > 0.0);
    }

    #[test]
    fn bounded_intercept_never_exceeds_min_y() {
        // Concave data pushes OLS intercepts above the smallest sample.
        let xs = [1.0, 100.0, 10_000.0];
        let ys = [5.0, 20.0, 120.0];
        let f = fit_bounded_intercept(&xs, &ys).unwrap();
        assert!(f.line.intercept <= 5.0, "intercept {}", f.line.intercept);
        assert!(f.line.intercept >= 0.0);
    }

    #[test]
    fn plane_fit_collinear_features_is_degenerate() {
        let x1 = [1.0, 2.0, 3.0, 4.0];
        let x2 = [2.0, 4.0, 6.0, 8.0]; // x2 = 2*x1
        let ys = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fit_plane(&x1, &x2, &ys), Err(FitError::DegenerateX));
    }

    #[test]
    fn plane_fit_too_few_points() {
        assert_eq!(
            fit_plane(&[1.0, 2.0], &[0.0, 1.0], &[1.0, 2.0]),
            Err(FitError::TooFewPoints { got: 2 })
        );
    }

    #[test]
    fn plane_fit_minimizes_noisy_residuals() {
        let x1: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let x2: Vec<f64> = (0..30).map(|i| ((i * 7) % 11) as f64).collect();
        let ys: Vec<f64> = x1
            .iter()
            .zip(&x2)
            .enumerate()
            .map(|(i, (a, b))| 3.0 * a - 2.0 * b + 5.0 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let p = fit_plane(&x1, &x2, &ys).unwrap();
        assert!((p.a - 3.0).abs() < 0.05, "{p:?}");
        assert!((p.b + 2.0).abs() < 0.05, "{p:?}");
        assert!((p.c - 5.0).abs() < 0.3, "{p:?}");
    }

    #[test]
    fn display_formats() {
        let l = Line::new(1.0, 0.5);
        assert!(format!("{l}").contains("* x +"));
        assert!(!format!("{:?}", FitError::DegenerateX).is_empty());
    }
}
