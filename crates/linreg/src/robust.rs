//! Robust (Huber / IRLS) one-variable regression.
//!
//! Ordinary least squares has a breakdown point of zero: a single corrupted
//! timing (a ×40 outlier that slipped past the dataset hygiene screen) can
//! move a fitted slope arbitrarily far. The Huber M-estimator keeps the OLS
//! behaviour on clean data — inside a band of `k` scaled residuals the loss
//! is quadratic — and switches to absolute loss outside it, so far-out
//! points contribute bounded influence.
//!
//! Implemented as iteratively reweighted least squares (IRLS): start from
//! OLS, compute residuals, scale them by a MAD-based robust sigma, weight
//! each point by `min(1, k / |r/sigma|)` and refit weighted least squares
//! until the coefficients stop moving. Everything is deterministic: each
//! iteration's weighted sums are assembled from per-chunk partials
//! ([`crate::accum::FIT_CHUNK`] rows per chunk) merged in fixed index
//! order, so the reduction shape is a function of the sample count alone
//! and a worker-split iteration reproduces the serial one bit-for-bit.

use crate::accum::{WlsAccum, FIT_CHUNK};
use crate::ols::{fit, Fit, FitError, Line};

/// Huber tuning constant: 1.345 gives 95% efficiency on clean Gaussian
/// data (the standard choice).
pub const HUBER_K: f64 = 1.345;

/// Maximum IRLS iterations; convergence is typically < 10.
const MAX_ITERS: usize = 25;

/// Relative coefficient change below which iteration stops.
const TOL: f64 = 1e-10;

/// Which estimator a model-training entry point should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Estimator {
    /// Plain ordinary least squares (the paper's estimator).
    #[default]
    Ols,
    /// Huber M-estimation via IRLS: OLS on clean data, bounded influence
    /// for outliers that survived collection hygiene.
    Huber,
}

/// Robust residual scale: `1.4826 * MAD` (consistent for the Gaussian).
///
/// Medians come from the shared NaN-safe quickselect in
/// [`crate::metrics`] — expected O(n) instead of the former sort, and the
/// identical order statistics, so every downstream weight is unchanged.
/// An empty sample yields `NaN`, which the IRLS loops treat exactly like
/// the converged `sigma <= 0` case.
fn robust_sigma(residuals: &[f64]) -> f64 {
    let med = crate::metrics::median(residuals);
    let dev: Vec<f64> = residuals.iter().map(|r| (r - med).abs()).collect();
    1.4826 * crate::metrics::median(&dev)
}

/// One IRLS round's weighted fit, assembled from per-chunk [`WlsAccum`]
/// partials merged in index order (the canonical reduction tree).
fn weighted_fit(xs: &[f64], ys: &[f64], ws: &[f64]) -> Result<Line, FitError> {
    let mut acc = WlsAccum::new();
    acc.accumulate(xs, ys, ws);
    acc.line()
}

fn r_squared(xs: &[f64], ys: &[f64], line: Line) -> f64 {
    let my = crate::stats::mean(ys);
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - line.eval(*x);
            e * e
        })
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Fits `y = slope * x + intercept` with the Huber M-estimator (IRLS).
///
/// On data whose residuals stay within `HUBER_K` robust sigmas, the result
/// coincides with [`fit`]; gross outliers are progressively down-weighted
/// instead of dominating the normal equations. The reported `r2` is the
/// *unweighted* coefficient of determination of the final line, so outliers
/// still show up as lack of fit.
///
/// # Errors
///
/// Same conditions as [`fit`].
///
/// # Examples
///
/// ```
/// // y = 2x + 1 with one wild outlier.
/// let xs: Vec<f64> = (1..=12).map(|i| i as f64).collect();
/// let mut ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
/// ys[11] = 500.0;
/// let f = dnnperf_linreg::fit_huber(&xs, &ys).unwrap();
/// let o = dnnperf_linreg::fit(&xs, &ys).unwrap();
/// assert!((f.line.slope - 2.0).abs() < 0.5 * (o.line.slope - 2.0).abs());
/// ```
pub fn fit_huber(xs: &[f64], ys: &[f64]) -> Result<Fit, FitError> {
    let start = fit(xs, ys)?;
    let mut line = start.line;
    for _ in 0..MAX_ITERS {
        let residuals: Vec<f64> = xs.iter().zip(ys).map(|(x, y)| y - line.eval(*x)).collect();
        let sigma = robust_sigma(&residuals);
        if sigma <= 0.0 || !sigma.is_finite() {
            // Majority of points already on the line: converged.
            break;
        }
        let ws: Vec<f64> = residuals
            .iter()
            .map(|r| {
                let u = (r / sigma).abs();
                if u <= HUBER_K {
                    1.0
                } else {
                    HUBER_K / u
                }
            })
            .collect();
        let next = weighted_fit(xs, ys, &ws)?;
        let moved = (next.slope - line.slope)
            .abs()
            .max((next.intercept - line.intercept).abs());
        let scale = line.slope.abs().max(line.intercept.abs()).max(1e-300);
        line = next;
        if moved / scale < TOL {
            break;
        }
    }
    Ok(Fit {
        line,
        r2: r_squared(xs, ys, line),
        n: xs.len(),
    })
}

/// Huber counterpart of [`crate::fit_bounded_intercept`]: robust fit with
/// the intercept constrained to `[0, min(y)]` (a per-invocation overhead
/// can be neither negative nor larger than the cheapest invocation).
///
/// # Errors
///
/// Same conditions as [`fit`].
pub fn fit_bounded_intercept_huber(xs: &[f64], ys: &[f64]) -> Result<Fit, FitError> {
    let f = fit_huber(xs, ys)?;
    let min_y = ys.iter().copied().fold(f64::INFINITY, f64::min).max(0.0);
    if f.line.intercept >= 0.0 && f.line.intercept <= min_y {
        return Ok(f);
    }
    let b = f.line.intercept.clamp(0.0, min_y);
    // Refit the slope robustly on the shifted data with the intercept
    // pinned: IRLS on (x, y - b) through a free intercept would drift, so
    // iterate slope-only weighted fits through the origin.
    let shifted: Vec<f64> = ys.iter().map(|y| y - b).collect();
    let mut slope = crate::ols::fit_through_origin(xs, &shifted)?.line.slope;
    for _ in 0..MAX_ITERS {
        let residuals: Vec<f64> = xs
            .iter()
            .zip(&shifted)
            .map(|(x, y)| y - slope * x)
            .collect();
        let sigma = robust_sigma(&residuals);
        if sigma <= 0.0 || !sigma.is_finite() {
            break;
        }
        // Slope-only weighted sums from per-chunk partials folded in index
        // order: the same canonical reduction tree the free-intercept IRLS
        // uses, so a worker-split iteration matches the serial one.
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        for ((cx, cy), cr) in xs
            .chunks(FIT_CHUNK)
            .zip(shifted.chunks(FIT_CHUNK))
            .zip(residuals.chunks(FIT_CHUNK))
        {
            let mut pxy = 0.0;
            let mut pxx = 0.0;
            for ((x, y), r) in cx.iter().zip(cy).zip(cr) {
                let u = (r / sigma).abs();
                let w = if u <= HUBER_K { 1.0 } else { HUBER_K / u };
                pxy += w * x * y;
                pxx += w * x * x;
            }
            sxy += pxy;
            sxx += pxx;
        }
        if sxx == 0.0 {
            return Err(FitError::DegenerateX);
        }
        let next = sxy / sxx;
        let moved = (next - slope).abs();
        let scale = slope.abs().max(1e-300);
        slope = next;
        if moved / scale < TOL {
            break;
        }
    }
    let line = Line::new(slope.max(0.0), b);
    Ok(Fit {
        line,
        r2: r_squared(xs, ys, line),
        n: xs.len(),
    })
}

/// Dispatches to [`fit`] or [`fit_huber`] by [`Estimator`].
///
/// # Errors
///
/// Same conditions as [`fit`].
pub fn fit_with(estimator: Estimator, xs: &[f64], ys: &[f64]) -> Result<Fit, FitError> {
    match estimator {
        Estimator::Ols => fit(xs, ys),
        Estimator::Huber => fit_huber(xs, ys),
    }
}

/// Dispatches to [`crate::fit_bounded_intercept`] or
/// [`fit_bounded_intercept_huber`] by [`Estimator`].
///
/// # Errors
///
/// Same conditions as [`fit`].
pub fn fit_bounded_intercept_with(
    estimator: Estimator,
    xs: &[f64],
    ys: &[f64],
) -> Result<Fit, FitError> {
    match estimator {
        Estimator::Ols => crate::ols::fit_bounded_intercept(xs, ys),
        Estimator::Huber => fit_bounded_intercept_huber(xs, ys),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_data_matches_ols_closely() {
        let xs: Vec<f64> = (1..40).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 2.0).collect();
        let h = fit_huber(&xs, &ys).unwrap();
        assert!((h.line.slope - 3.0).abs() < 1e-9);
        assert!((h.line.intercept - 2.0).abs() < 1e-9);
        assert!((h.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_gross_outlier_barely_moves_huber() {
        let xs: Vec<f64> = (1..=30).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        ys[15] *= 40.0; // one corrupted measurement
        let ols = fit(&xs, &ys).unwrap();
        let hub = fit_huber(&xs, &ys).unwrap();
        assert!(
            (hub.line.slope - 2.0).abs() < 0.05,
            "huber slope {}",
            hub.line.slope
        );
        assert!(
            (ols.line.slope - 2.0).abs() > 5.0 * (hub.line.slope - 2.0).abs(),
            "ols {} vs huber {}",
            ols.line.slope,
            hub.line.slope
        );
    }

    #[test]
    fn downscaled_outlier_is_also_resisted() {
        let xs: Vec<f64> = (1..=30).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        ys[29] *= 0.025; // measured 40x too fast
        let hub = fit_huber(&xs, &ys).unwrap();
        assert!((hub.line.slope - 2.0).abs() < 0.1, "{}", hub.line.slope);
    }

    #[test]
    fn propagates_fit_errors() {
        assert_eq!(
            fit_huber(&[1.0], &[1.0]),
            Err(FitError::TooFewPoints { got: 1 })
        );
        assert_eq!(
            fit_huber(&[2.0, 2.0], &[1.0, 3.0]),
            Err(FitError::DegenerateX)
        );
        assert_eq!(
            fit_huber(&[1.0, 2.0], &[1.0]),
            Err(FitError::LengthMismatch { xs: 2, ys: 1 })
        );
    }

    #[test]
    fn bounded_huber_respects_bounds() {
        let xs = [1.0, 2.0, 10.0, 11.0, 12.0];
        let ys = [0.5, 1.5, 11.0, 12.0, 13.2];
        let f = fit_bounded_intercept_huber(&xs, &ys).unwrap();
        let min_y = 0.5;
        assert!(f.line.intercept >= 0.0 && f.line.intercept <= min_y);
        assert!(f.line.slope > 0.0);
    }

    #[test]
    fn estimator_dispatch() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        let o = fit_with(Estimator::Ols, &xs, &ys).unwrap();
        let h = fit_with(Estimator::Huber, &xs, &ys).unwrap();
        assert!((o.line.slope - h.line.slope).abs() < 1e-9);
        assert_eq!(Estimator::default(), Estimator::Ols);
    }

    #[test]
    fn deterministic_across_calls() {
        let xs: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| 1.5 * x + 4.0).collect();
        ys[10] += 300.0;
        ys[40] -= 200.0;
        let a = fit_huber(&xs, &ys).unwrap();
        let b = fit_huber(&xs, &ys).unwrap();
        assert_eq!(a, b);
    }
}
