//! Ordinary least squares regression and error metrics.
//!
//! This crate is the statistical substrate of the dnnperf performance models.
//! The paper deliberately avoids "complex statistical approaches, such as PCA
//! and Neural Networks" — everything in the predictor stack reduces to simple
//! one-variable linear regression ([`Fit`]) plus a handful of error metrics
//! ([`metrics`]).
//!
//! # Examples
//!
//! ```
//! use dnnperf_linreg::fit;
//!
//! # fn main() -> Result<(), dnnperf_linreg::FitError> {
//! let xs = [1.0, 2.0, 3.0, 4.0];
//! let ys = [2.1, 3.9, 6.0, 8.1];
//! let fit = fit(&xs, &ys)?;
//! assert!((fit.line.slope - 2.0).abs() < 0.1);
//! assert!(fit.r2 > 0.99);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
// Predictor-side code must degrade gracefully, never crash: a stray
// `unwrap` would turn a recoverable modelling failure into a panic.
// dnnperf-lint's panic-policy pass verifies this attribute stays in place.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod accum;
pub mod metrics;
pub mod ols;
pub mod robust;
pub mod stats;

pub use accum::{fit_bounded_segments, OlsAccum, WlsAccum, FIT_CHUNK};
pub use metrics::{mean_abs_rel_error, median, percentile, ratio_curve, SCurvePoint};
pub use ols::{
    fit, fit_bounded_intercept, fit_plane, fit_through_origin, Fit, FitError, Line, PlaneFit,
};
pub use robust::{
    fit_bounded_intercept_huber, fit_bounded_intercept_with, fit_huber, fit_with, Estimator,
    HUBER_K,
};
pub use stats::{mean, pearson, variance};
