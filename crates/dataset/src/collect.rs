//! Dataset collection: profiling the zoo across GPUs and batch sizes.

use crate::dataset::Dataset;
use crate::record::{KernelRow, LayerRow, NetworkRow};
use dnnperf_dnn::Network;
use dnnperf_gpu::{GpuSpec, ProfileError, Profiler, Trace};
use std::sync::Arc;

/// Converts one profiler trace into dataset rows.
pub fn trace_rows(trace: &Trace, net: &Network) -> (NetworkRow, Vec<LayerRow>, Vec<KernelRow>) {
    let network: Arc<str> = Arc::from(trace.network.as_str());
    let gpu: Arc<str> = Arc::from(trace.gpu.as_str());
    let batch = trace.batch as u32;
    let mut layers = Vec::with_capacity(trace.layers.len());
    let mut kernels = Vec::new();
    for l in &trace.layers {
        let layer_type: Arc<str> = Arc::from(l.type_tag);
        layers.push(LayerRow {
            network: network.clone(),
            gpu: gpu.clone(),
            batch,
            layer_index: l.layer_index as u32,
            layer_type: layer_type.clone(),
            flops: l.flops,
            in_elems: l.in_elems,
            out_elems: l.out_elems,
            seconds: l.seconds(),
        });
        for k in &l.kernels {
            kernels.push(KernelRow {
                network: network.clone(),
                gpu: gpu.clone(),
                batch,
                layer_index: l.layer_index as u32,
                layer_type: layer_type.clone(),
                kernel: Arc::from(k.name.as_str()),
                in_elems: l.in_elems,
                flops: l.flops,
                out_elems: l.out_elems,
                seconds: k.seconds,
            });
        }
    }
    let row = NetworkRow {
        network,
        family: Arc::from(trace.family.as_str()),
        gpu,
        batch,
        flops: trace.total_flops(),
        bytes: net.total_bytes() * trace.batch as u64,
        e2e_seconds: trace.e2e_seconds,
        gpu_seconds: trace.gpu_seconds(),
        kernel_count: trace.kernel_count() as u32,
    };
    (row, layers, kernels)
}

/// Profiles every network on every GPU at every batch size, skipping
/// out-of-memory combinations (the paper's dataset cleaning).
///
/// # Examples
///
/// ```
/// use dnnperf_data::collect::collect;
/// use dnnperf_gpu::GpuSpec;
///
/// let nets = [dnnperf_dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0)];
/// let gpus = [GpuSpec::by_name("V100").unwrap()];
/// let ds = collect(&nets, &gpus, &[8, 32]);
/// assert_eq!(ds.networks.len(), 2);
/// ```
pub fn collect(nets: &[Network], gpus: &[GpuSpec], batches: &[usize]) -> Dataset {
    collect_with(nets, gpus, batches, &dnnperf_gpu::TimingModel::new())
}

/// Like [`collect`], but measuring under an explicit ground-truth timing
/// model. Robustness tests use this to show the predictors work in
/// alternative measurement universes, not just the canonical seed.
pub fn collect_with(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    timing: &dnnperf_gpu::TimingModel,
) -> Dataset {
    let mut ds = Dataset::new();
    for gpu in gpus {
        let profiler = Profiler::with_timing(gpu.clone(), timing.clone());
        for net in nets {
            for &batch in batches {
                match profiler.profile(net, batch) {
                    Ok(trace) => {
                        let (n, l, k) = trace_rows(&trace, net);
                        ds.networks.push(n);
                        ds.layers.extend(l);
                        ds.kernels.extend(k);
                    }
                    Err(ProfileError::OutOfMemory { .. }) => {
                        // Fail-to-execute experiments are dropped, as in the
                        // paper's cleaning step.
                    }
                }
            }
        }
    }
    ds
}

/// Like [`collect`], but profiling networks on `threads` worker threads.
///
/// Row order (and therefore the resulting dataset) is **identical** to the
/// serial [`collect`]: workers profile disjoint network chunks and the
/// results are stitched back in network order, preserving the per-experiment
/// row contiguity that [`Dataset::dedup`] and the mapping table rely on.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn collect_parallel(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    threads: usize,
) -> Dataset {
    assert!(threads > 0, "need at least one worker thread");
    let mut ds = Dataset::new();
    for gpu in gpus {
        let chunk = nets.len().div_ceil(threads).max(1);
        // `std::thread::scope` (stabilised in Rust 1.63) borrows `nets`,
        // `batches` and `gpu` directly — no external scoped-thread crate.
        // Handles are joined in spawn order, so chunk results are stitched
        // back in network order and the dataset is byte-identical to the
        // serial `collect`.
        let per_chunk: Vec<Dataset> = std::thread::scope(|scope| {
            let handles: Vec<_> = nets
                .chunks(chunk)
                .map(|chunk_nets| {
                    scope.spawn(move || collect(chunk_nets, std::slice::from_ref(gpu), batches))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("collection worker panicked"))
                .collect()
        });
        for chunk_ds in per_chunk {
            ds.merge(chunk_ds);
        }
    }
    ds
}

/// The GPUs the paper's single-GPU models are trained and evaluated on
/// (Section 5.4): A100, A40, GTX 1080 Ti, TITAN RTX, V100.
pub fn evaluation_gpus() -> Vec<GpuSpec> {
    ["A100", "A40", "GTX 1080 Ti", "TITAN RTX", "V100"]
        .iter()
        .map(|n| GpuSpec::by_name(n).expect("known GPU"))
        .collect()
}

/// The paper's training batch size (GPUs fully utilised).
pub const TRAIN_BATCH: usize = 512;

/// Like [`collect`], but measuring *training steps* (forward + backward +
/// optimizer update) instead of inference batches — the paper's future-work
/// extension. Out-of-memory combinations are skipped; training keeps all
/// activations alive, so feasible batch sizes are smaller than for
/// inference.
pub fn collect_training(nets: &[Network], gpus: &[GpuSpec], batches: &[usize]) -> Dataset {
    let mut ds = Dataset::new();
    for gpu in gpus {
        let profiler = Profiler::new(gpu.clone());
        for net in nets {
            for &batch in batches {
                match profiler.profile_training(net, batch) {
                    Ok(trace) => {
                        let (n, l, k) = trace_rows(&trace, net);
                        ds.networks.push(n);
                        ds.layers.extend(l);
                        ds.kernels.extend(k);
                    }
                    Err(ProfileError::OutOfMemory { .. }) => {}
                }
            }
        }
    }
    ds
}

/// Collects the paper's main dataset: the full 646-network CNN zoo at the
/// training batch size on the five evaluation GPUs.
///
/// This takes a few seconds and produces on the order of a million kernel
/// rows; experiment binaries call it once and reuse the result.
pub fn collect_main_cnn_dataset() -> Dataset {
    let nets = dnnperf_dnn::zoo::cnn_zoo();
    collect(&nets, &evaluation_gpus(), &[TRAIN_BATCH])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_dnn::zoo;

    #[test]
    fn oom_runs_are_skipped() {
        let nets = [zoo::vgg::vgg16()];
        let gpus = [GpuSpec::by_name("Quadro P620").unwrap()];
        let ds = collect(&nets, &gpus, &[512]);
        assert!(ds.is_empty());
    }

    #[test]
    fn rows_are_consistent() {
        let nets = [zoo::resnet::resnet18()];
        let gpus = [GpuSpec::by_name("A100").unwrap()];
        let ds = collect(&nets, &gpus, &[32]);
        assert_eq!(ds.networks.len(), 1);
        let n = &ds.networks[0];
        assert_eq!(ds.kernels.len(), n.kernel_count as usize);
        assert_eq!(ds.layers.len(), zoo::resnet::resnet18().num_layers());
        // Layer seconds sum to the network GPU time.
        let layer_sum: f64 = ds.layers.iter().map(|l| l.seconds).sum();
        assert!((layer_sum - n.gpu_seconds).abs() < 1e-9);
        // E2E includes sync overhead on top of GPU time.
        assert!(n.e2e_seconds > n.gpu_seconds);
        // Kernel rows carry the owning layer's driver variables.
        let k0 = &ds.kernels[0];
        let l0 = ds
            .layers
            .iter()
            .find(|l| l.layer_index == k0.layer_index)
            .unwrap();
        assert_eq!(k0.in_elems, l0.in_elems);
        assert_eq!(k0.flops, l0.flops);
    }

    #[test]
    fn multiple_gpus_and_batches_multiply_rows() {
        let nets = [zoo::mobilenet::mobilenet_v2(0.5, 1.0)];
        let gpus = [
            GpuSpec::by_name("A100").unwrap(),
            GpuSpec::by_name("V100").unwrap(),
        ];
        let ds = collect(&nets, &gpus, &[8, 16, 32]);
        assert_eq!(ds.networks.len(), 6);
        assert_eq!(ds.gpu_names().len(), 2);
    }

    #[test]
    fn parallel_collection_matches_serial_exactly() {
        let nets: Vec<_> = (1..9)
            .map(|w| zoo::mobilenet::mobilenet_v2(w as f64 * 0.2, 1.0))
            .collect();
        let gpus = [
            GpuSpec::by_name("A100").unwrap(),
            GpuSpec::by_name("V100").unwrap(),
        ];
        let serial = collect(&nets, &gpus, &[8, 16]);
        for threads in [1, 3, 8, 32] {
            let parallel = collect_parallel(&nets, &gpus, &[8, 16], threads);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn evaluation_gpus_match_paper() {
        let names: Vec<String> = evaluation_gpus().iter().map(|g| g.name.clone()).collect();
        assert_eq!(names, ["A100", "A40", "GTX 1080 Ti", "TITAN RTX", "V100"]);
    }
}
