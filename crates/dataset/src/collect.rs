//! Dataset collection: profiling the zoo across GPUs and batch sizes.
//!
//! All collection — serial, parallel, inference, training — runs through
//! one *grid engine*: the `(gpu, network, batch)` cartesian grid is
//! enumerated in serial order, each grid point is profiled independently
//! (fanned out over `dnnperf-sched`'s work-stealing pool when more than
//! one thread is requested), and the per-point rows are stitched back in
//! grid order. The resulting [`Dataset`] is therefore **byte-identical**
//! regardless of thread count — a property the determinism conformance
//! suite (`tests/determinism.rs`) pins down.
//!
//! On top of the engine sits an optional content-addressed on-disk cache
//! ([`crate::cache`]): pass a `cache_dir` in [`CollectOptions`] (or set
//! `DNNPERF_CACHE_DIR`) and repeated collections of the same grid under
//! the same measurement universe are served from disk instead of
//! re-profiled.

pub use crate::cache::CollectMode;
use crate::cache::{dataset_key, CacheStats, DatasetCache};
use crate::dataset::Dataset;
use crate::record::{KernelRow, LayerRow, NetworkRow};
use dnnperf_dnn::Network;
use dnnperf_gpu::{GpuSpec, ProfileError, Profiler, TimingModel, Trace};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Converts one profiler trace into dataset rows.
pub fn trace_rows(trace: &Trace, net: &Network) -> (NetworkRow, Vec<LayerRow>, Vec<KernelRow>) {
    let network: Arc<str> = Arc::from(trace.network.as_str());
    let gpu: Arc<str> = Arc::from(trace.gpu.as_str());
    let batch = trace.batch as u32;
    let mut layers = Vec::with_capacity(trace.layers.len());
    let mut kernels = Vec::new();
    for l in &trace.layers {
        let layer_type: Arc<str> = Arc::from(l.type_tag);
        layers.push(LayerRow {
            network: network.clone(),
            gpu: gpu.clone(),
            batch,
            layer_index: l.layer_index as u32,
            layer_type: layer_type.clone(),
            flops: l.flops,
            in_elems: l.in_elems,
            out_elems: l.out_elems,
            seconds: l.seconds(),
        });
        for k in &l.kernels {
            kernels.push(KernelRow {
                network: network.clone(),
                gpu: gpu.clone(),
                batch,
                layer_index: l.layer_index as u32,
                layer_type: layer_type.clone(),
                kernel: Arc::from(k.name.as_str()),
                in_elems: l.in_elems,
                flops: l.flops,
                out_elems: l.out_elems,
                seconds: k.seconds,
            });
        }
    }
    let row = NetworkRow {
        network,
        family: Arc::from(trace.family.as_str()),
        gpu,
        batch,
        flops: trace.total_flops(),
        bytes: net.total_bytes() * trace.batch as u64,
        e2e_seconds: trace.e2e_seconds,
        gpu_seconds: trace.gpu_seconds(),
        kernel_count: trace.kernel_count() as u32,
    };
    (row, layers, kernels)
}

/// Shared knobs of the collection engine, threaded from the experiment
/// binaries (and `DNNPERF_*` environment overrides) down to every
/// collection call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectOptions {
    /// Worker threads for the profiling grid. `0` means "auto": use
    /// [`std::thread::available_parallelism`]. `1` disables threading.
    pub threads: usize,
    /// Root directory of the content-addressed dataset cache; `None`
    /// disables caching.
    pub cache_dir: Option<PathBuf>,
}

impl CollectOptions {
    /// Serial, uncached collection (the engine's conservative default).
    pub fn serial() -> Self {
        CollectOptions {
            threads: 1,
            cache_dir: None,
        }
    }

    /// Uncached collection on `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        CollectOptions {
            threads,
            cache_dir: None,
        }
    }

    /// Options from the environment: `DNNPERF_THREADS` (worker count; any
    /// unparsable or zero value means auto) and `DNNPERF_CACHE_DIR` (cache
    /// root; unset or empty disables caching). Auto threading when
    /// `DNNPERF_THREADS` is unset.
    pub fn from_env() -> Self {
        let threads = std::env::var("DNNPERF_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        let cache_dir = std::env::var("DNNPERF_CACHE_DIR")
            .ok()
            .filter(|v| !v.is_empty())
            .map(PathBuf::from);
        CollectOptions { threads, cache_dir }
    }

    /// Returns a copy with the cache rooted at `dir`.
    pub fn cached_at(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// The concrete worker count (resolves `0` to the machine's available
    /// parallelism).
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        }
    }
}

/// One grid point's rows, `None` when the run was dropped (out of memory —
/// the paper's cleaning of fail-to-execute experiments).
type GridRows = Option<(NetworkRow, Vec<LayerRow>, Vec<KernelRow>)>;

/// Profiles one `(gpu, network, batch)` grid point.
fn profile_point(
    gpu: &GpuSpec,
    net: &Network,
    batch: usize,
    timing: &TimingModel,
    mode: CollectMode,
) -> GridRows {
    let profiler = Profiler::with_timing(gpu.clone(), timing.clone());
    let result = match mode {
        CollectMode::Inference => profiler.profile(net, batch),
        CollectMode::Training => profiler.profile_training(net, batch),
    };
    match result {
        Ok(trace) => Some(trace_rows(&trace, net)),
        // Fail-to-execute experiments are dropped, as in the paper's
        // cleaning step.
        Err(ProfileError::OutOfMemory { .. }) => None,
    }
}

/// Runs the full profiling grid on `threads` work-stealing workers and
/// stitches the rows back in serial `(gpu, network, batch)` order.
fn run_grid(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    timing: &TimingModel,
    mode: CollectMode,
    threads: usize,
) -> Dataset {
    assert!(threads > 0, "need at least one worker thread");
    let per_gpu = nets.len() * batches.len();
    let jobs = gpus.len() * per_gpu;
    let mut ds = Dataset::new();
    if jobs == 0 {
        return ds;
    }
    let point = |i: usize| {
        let gpu = &gpus[i / per_gpu];
        let rest = i % per_gpu;
        let net = &nets[rest / batches.len()];
        let batch = batches[rest % batches.len()];
        profile_point(gpu, net, batch, timing, mode)
    };
    let results: Vec<GridRows> = if threads == 1 {
        (0..jobs).map(point).collect()
    } else {
        dnnperf_sched::run_indexed(jobs, threads, point)
    };
    for (n, l, k) in results.into_iter().flatten() {
        ds.networks.push(n);
        ds.layers.extend(l);
        ds.kernels.extend(k);
    }
    ds
}

/// The full engine: cache lookup, parallel grid profiling, cache fill.
///
/// This is the single path every public collection entry point funnels
/// through; it returns the dataset plus the run's cache traffic.
pub fn collect_engine(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    timing: &TimingModel,
    mode: CollectMode,
    opts: &CollectOptions,
) -> (Dataset, CacheStats) {
    let mut stats = CacheStats::default();
    let cache = opts.cache_dir.as_ref().map(DatasetCache::new);
    let key = cache
        .as_ref()
        .map(|_| dataset_key(nets, gpus, batches, timing.seed(), mode));
    if let (Some(cache), Some(key)) = (&cache, key) {
        if let Some((ds, bytes)) = cache.load(key) {
            stats.hits += 1;
            stats.bytes_read += bytes;
            return (ds, stats);
        }
        stats.misses += 1;
    }
    let ds = run_grid(nets, gpus, batches, timing, mode, opts.effective_threads());
    if let (Some(cache), Some(key)) = (&cache, key) {
        // The cache is best-effort: a full disk must not fail collection.
        if let Ok(bytes) = cache.store(key, &ds) {
            stats.bytes_written += bytes;
        }
    }
    (ds, stats)
}

/// Profiles every network on every GPU at every batch size, skipping
/// out-of-memory combinations (the paper's dataset cleaning).
///
/// # Examples
///
/// ```
/// use dnnperf_data::collect::collect;
/// use dnnperf_gpu::GpuSpec;
///
/// let nets = [dnnperf_dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0)];
/// let gpus = [GpuSpec::by_name("V100").unwrap()];
/// let ds = collect(&nets, &gpus, &[8, 32]);
/// assert_eq!(ds.networks.len(), 2);
/// ```
pub fn collect(nets: &[Network], gpus: &[GpuSpec], batches: &[usize]) -> Dataset {
    collect_with(nets, gpus, batches, &TimingModel::new())
}

/// Like [`collect`], but measuring under an explicit ground-truth timing
/// model. Robustness tests use this to show the predictors work in
/// alternative measurement universes, not just the canonical seed.
pub fn collect_with(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    timing: &TimingModel,
) -> Dataset {
    collect_engine(
        nets,
        gpus,
        batches,
        timing,
        CollectMode::Inference,
        &CollectOptions::serial(),
    )
    .0
}

/// Collection with full engine options (threads + cache), returning the
/// run's cache traffic alongside the dataset.
pub fn collect_opts(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    opts: &CollectOptions,
) -> (Dataset, CacheStats) {
    collect_engine(
        nets,
        gpus,
        batches,
        &TimingModel::new(),
        CollectMode::Inference,
        opts,
    )
}

/// Like [`collect`], but profiling on `threads` work-stealing worker
/// threads over the whole `(gpu, network, batch)` grid.
///
/// Row order (and therefore the resulting dataset) is **identical** to the
/// serial [`collect`]: grid points carry their serial index through the
/// pool and are stitched back in index order, preserving the
/// per-experiment row contiguity that [`Dataset::dedup`] and the mapping
/// table rely on. The conformance suite asserts `collect_parallel(..) ==
/// collect(..)` across randomized grids and thread counts.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn collect_parallel(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    threads: usize,
) -> Dataset {
    assert!(threads > 0, "need at least one worker thread");
    collect_opts(nets, gpus, batches, &CollectOptions::with_threads(threads)).0
}

/// The GPUs the paper's single-GPU models are trained and evaluated on
/// (Section 5.4): A100, A40, GTX 1080 Ti, TITAN RTX, V100.
pub fn evaluation_gpus() -> Vec<GpuSpec> {
    ["A100", "A40", "GTX 1080 Ti", "TITAN RTX", "V100"]
        .iter()
        .map(|n| GpuSpec::by_name(n).expect("known GPU"))
        .collect()
}

/// The paper's training batch size (GPUs fully utilised).
pub const TRAIN_BATCH: usize = 512;

/// Like [`collect`], but measuring *training steps* (forward + backward +
/// optimizer update) instead of inference batches — the paper's future-work
/// extension. Out-of-memory combinations are skipped; training keeps all
/// activations alive, so feasible batch sizes are smaller than for
/// inference.
pub fn collect_training(nets: &[Network], gpus: &[GpuSpec], batches: &[usize]) -> Dataset {
    collect_training_opts(nets, gpus, batches, &CollectOptions::serial()).0
}

/// [`collect_training`] with full engine options: training collection gets
/// the same work-stealing parallelism and content-addressed caching as
/// inference collection (the two modes never share cache keys).
pub fn collect_training_opts(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    opts: &CollectOptions,
) -> (Dataset, CacheStats) {
    collect_engine(
        nets,
        gpus,
        batches,
        &TimingModel::new(),
        CollectMode::Training,
        opts,
    )
}

/// Collects the paper's main dataset: the full 646-network CNN zoo at the
/// training batch size on the five evaluation GPUs.
///
/// Honors `DNNPERF_THREADS` and `DNNPERF_CACHE_DIR` (see
/// [`CollectOptions::from_env`]) and prints the per-run cache-stats
/// summary line to stderr. With a warm cache the profiling step is skipped
/// entirely.
pub fn collect_main_cnn_dataset() -> Dataset {
    collect_main_cnn_dataset_opts(&CollectOptions::from_env())
}

/// [`collect_main_cnn_dataset`] with explicit engine options.
pub fn collect_main_cnn_dataset_opts(opts: &CollectOptions) -> Dataset {
    let t = Instant::now();
    let nets = dnnperf_dnn::zoo::cnn_zoo();
    let (ds, stats) = collect_opts(&nets, &evaluation_gpus(), &[TRAIN_BATCH], opts);
    eprintln!(
        "[collect] main CNN dataset: {} kernel rows | {}",
        ds.kernels.len(),
        stats.summary(t.elapsed().as_secs_f64())
    );
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_dnn::zoo;

    #[test]
    fn oom_runs_are_skipped() {
        let nets = [zoo::vgg::vgg16()];
        let gpus = [GpuSpec::by_name("Quadro P620").unwrap()];
        let ds = collect(&nets, &gpus, &[512]);
        assert!(ds.is_empty());
    }

    #[test]
    fn rows_are_consistent() {
        let nets = [zoo::resnet::resnet18()];
        let gpus = [GpuSpec::by_name("A100").unwrap()];
        let ds = collect(&nets, &gpus, &[32]);
        assert_eq!(ds.networks.len(), 1);
        let n = &ds.networks[0];
        assert_eq!(ds.kernels.len(), n.kernel_count as usize);
        assert_eq!(ds.layers.len(), zoo::resnet::resnet18().num_layers());
        // Layer seconds sum to the network GPU time.
        let layer_sum: f64 = ds.layers.iter().map(|l| l.seconds).sum();
        assert!((layer_sum - n.gpu_seconds).abs() < 1e-9);
        // E2E includes sync overhead on top of GPU time.
        assert!(n.e2e_seconds > n.gpu_seconds);
        // Kernel rows carry the owning layer's driver variables.
        let k0 = &ds.kernels[0];
        let l0 = ds
            .layers
            .iter()
            .find(|l| l.layer_index == k0.layer_index)
            .unwrap();
        assert_eq!(k0.in_elems, l0.in_elems);
        assert_eq!(k0.flops, l0.flops);
    }

    #[test]
    fn multiple_gpus_and_batches_multiply_rows() {
        let nets = [zoo::mobilenet::mobilenet_v2(0.5, 1.0)];
        let gpus = [
            GpuSpec::by_name("A100").unwrap(),
            GpuSpec::by_name("V100").unwrap(),
        ];
        let ds = collect(&nets, &gpus, &[8, 16, 32]);
        assert_eq!(ds.networks.len(), 6);
        assert_eq!(ds.gpu_names().len(), 2);
    }

    #[test]
    fn parallel_collection_matches_serial_exactly() {
        let nets: Vec<_> = (1..9)
            .map(|w| zoo::mobilenet::mobilenet_v2(w as f64 * 0.2, 1.0))
            .collect();
        let gpus = [
            GpuSpec::by_name("A100").unwrap(),
            GpuSpec::by_name("V100").unwrap(),
        ];
        let serial = collect(&nets, &gpus, &[8, 16]);
        for threads in [1, 3, 8, 32] {
            let parallel = collect_parallel(&nets, &gpus, &[8, 16], threads);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn training_collection_matches_modes() {
        // The folded grid runner must reproduce the direct profiler calls.
        let nets = [zoo::mobilenet::mobilenet_v2(0.5, 1.0)];
        let gpu = GpuSpec::by_name("A100").unwrap();
        let ds = collect_training(&nets, std::slice::from_ref(&gpu), &[16]);
        assert_eq!(ds.networks.len(), 1);
        let trace = Profiler::new(gpu.clone())
            .profile_training(&nets[0], 16)
            .unwrap();
        assert_eq!(ds.networks[0].e2e_seconds, trace.e2e_seconds);
        // Training parallelism is serial-identical too.
        let par = collect_training_opts(
            &nets,
            std::slice::from_ref(&gpu),
            &[16],
            &CollectOptions::with_threads(4),
        )
        .0;
        assert_eq!(ds, par);
    }

    #[test]
    fn cached_collection_hits_on_second_run() {
        let dir = std::env::temp_dir().join("dnnperf_collect_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        let nets = [zoo::mobilenet::mobilenet_v2(0.4, 1.0)];
        let gpus = [GpuSpec::by_name("V100").unwrap()];
        let opts = CollectOptions::with_threads(2).cached_at(&dir);
        let (cold, s1) = collect_opts(&nets, &gpus, &[8], &opts);
        assert_eq!((s1.hits, s1.misses), (0, 1));
        assert!(s1.bytes_written > 0);
        let (warm, s2) = collect_opts(&nets, &gpus, &[8], &opts);
        assert_eq!((s2.hits, s2.misses), (1, 0));
        assert_eq!(s2.bytes_read, s1.bytes_written);
        assert_eq!(cold, warm);
        // And both equal the uncached collection.
        assert_eq!(cold, collect(&nets, &gpus, &[8]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evaluation_gpus_match_paper() {
        let names: Vec<String> = evaluation_gpus().iter().map(|g| g.name.clone()).collect();
        assert_eq!(names, ["A100", "A40", "GTX 1080 Ti", "TITAN RTX", "V100"]);
    }
}
