//! Dataset collection: profiling the zoo across GPUs and batch sizes.
//!
//! All collection — serial, parallel, inference, training — runs through
//! one *grid engine*: the `(gpu, network, batch)` cartesian grid is
//! enumerated in serial order, each grid point is profiled independently
//! (fanned out over `dnnperf-sched`'s work-stealing pool when more than
//! one thread is requested), and the per-point rows are stitched back in
//! grid order. The resulting [`Dataset`] is therefore **byte-identical**
//! regardless of thread count — a property the determinism conformance
//! suite (`tests/determinism.rs`) pins down.
//!
//! On top of the engine sits an optional content-addressed on-disk cache
//! ([`crate::cache`]): pass a `cache_dir` in [`CollectOptions`] (or set
//! `DNNPERF_CACHE_DIR`) and repeated collections of the same grid under
//! the same measurement universe are served from disk instead of
//! re-profiled.

pub use crate::cache::CollectMode;
use crate::cache::{dataset_key, CacheLookup, CacheStats, DatasetCache, Fnv};
use crate::dataset::Dataset;
use crate::hygiene;
use crate::record::{KernelRow, LayerRow, NetworkRow};
use dnnperf_dnn::Network;
use dnnperf_gpu::hashrng::hash_with;
use dnnperf_gpu::{FaultPlan, FaultyProfiler, GpuSpec, ProfileError, Profiler, TimingModel, Trace};
use dnnperf_sched::retry::{
    retry_with_backoff, Backoff, Clock, RetryClass, RetryPolicy, SystemClock,
};
use std::path::PathBuf;
use std::sync::Arc;

/// Converts one profiler trace into dataset rows.
pub fn trace_rows(trace: &Trace, net: &Network) -> (NetworkRow, Vec<LayerRow>, Vec<KernelRow>) {
    let network: Arc<str> = Arc::from(trace.network.as_str());
    let gpu: Arc<str> = Arc::from(trace.gpu.as_str());
    let batch = trace.batch as u32;
    let mut layers = Vec::with_capacity(trace.layers.len());
    let mut kernels = Vec::new();
    for l in &trace.layers {
        let layer_type: Arc<str> = Arc::from(l.type_tag);
        layers.push(LayerRow {
            network: network.clone(),
            gpu: gpu.clone(),
            batch,
            layer_index: l.layer_index as u32,
            layer_type: layer_type.clone(),
            flops: l.flops,
            in_elems: l.in_elems,
            out_elems: l.out_elems,
            seconds: l.seconds(),
        });
        for k in &l.kernels {
            kernels.push(KernelRow {
                network: network.clone(),
                gpu: gpu.clone(),
                batch,
                layer_index: l.layer_index as u32,
                layer_type: layer_type.clone(),
                kernel: Arc::from(k.name.as_str()),
                in_elems: l.in_elems,
                flops: l.flops,
                out_elems: l.out_elems,
                seconds: k.seconds,
            });
        }
    }
    let row = NetworkRow {
        network,
        family: Arc::from(trace.family.as_str()),
        gpu,
        batch,
        flops: trace.total_flops(),
        bytes: net.total_bytes() * trace.batch as u64,
        e2e_seconds: trace.e2e_seconds,
        gpu_seconds: trace.gpu_seconds(),
        kernel_count: trace.kernel_count() as u32,
    };
    (row, layers, kernels)
}

/// Default bounded retries per grid point. Matches the default
/// [`FaultPlan::max_faulty_attempts`], so a transient-only fault plan can
/// always be retried through to its guaranteed-clean attempt.
pub const DEFAULT_RETRIES: u32 = 3;

/// Shared knobs of the collection engine, threaded from the experiment
/// binaries (and `DNNPERF_*` environment overrides) down to every
/// collection call.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectOptions {
    /// Worker threads for the profiling grid. `0` means "auto": use
    /// [`std::thread::available_parallelism`]. `1` disables threading.
    pub threads: usize,
    /// Root directory of the content-addressed dataset cache; `None`
    /// disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Bounded retries per grid point for transient failures, corrupted
    /// measurements and straggler attempts. Irrelevant without a fault
    /// plan: the clean simulator never fails transiently.
    pub retries: u32,
    /// Deterministic fault plan for fault-injection experiments; `None`
    /// (the default) profiles on the clean simulator.
    pub fault: Option<FaultPlan>,
    /// MAD-based outlier quarantine at ingest (see
    /// [`crate::hygiene::quarantine_scale_outliers`]). Enabled by the
    /// fault builders; clean data passes the screen byte-identically.
    pub screen_outliers: bool,
}

impl Default for CollectOptions {
    fn default() -> Self {
        CollectOptions {
            threads: 0,
            cache_dir: None,
            retries: DEFAULT_RETRIES,
            fault: None,
            screen_outliers: false,
        }
    }
}

impl CollectOptions {
    /// Serial, uncached collection (the engine's conservative default).
    pub fn serial() -> Self {
        CollectOptions {
            threads: 1,
            ..CollectOptions::default()
        }
    }

    /// Uncached collection on `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        CollectOptions {
            threads,
            ..CollectOptions::default()
        }
    }

    /// Options from the environment:
    ///
    /// * `DNNPERF_THREADS` — worker count; unparsable or zero means auto;
    /// * `DNNPERF_CACHE_DIR` — cache root; unset or empty disables caching;
    /// * `DNNPERF_FAULT_RATE` — per-attempt fault probability; any value
    ///   in `(0, 1]` arms a transient-only fault plan (and the outlier
    ///   screen);
    /// * `DNNPERF_FAULT_SEED` — fault-universe seed (default `0xFA17`);
    /// * `DNNPERF_RETRIES` — bounded retries per grid point (default 3).
    pub fn from_env() -> Self {
        let threads = std::env::var("DNNPERF_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        let cache_dir = std::env::var("DNNPERF_CACHE_DIR")
            .ok()
            .filter(|v| !v.is_empty())
            .map(PathBuf::from);
        let retries = std::env::var("DNNPERF_RETRIES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(DEFAULT_RETRIES);
        let rate = std::env::var("DNNPERF_FAULT_RATE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.0);
        let fault = (rate > 0.0).then(|| {
            let seed = std::env::var("DNNPERF_FAULT_SEED")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0xFA17);
            FaultPlan::transient_only(seed, rate.min(1.0))
        });
        CollectOptions {
            threads,
            cache_dir,
            retries,
            screen_outliers: fault.is_some(),
            fault,
        }
    }

    /// Returns a copy with the cache rooted at `dir`.
    pub fn cached_at(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Returns a copy measuring through `plan`'s fault universe, with the
    /// outlier screen armed (corrupted measurements that survive retries
    /// must not reach training).
    pub fn faulty(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self.screen_outliers = true;
        self
    }

    /// Returns a copy with the per-point retry budget set to `retries`.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// The concrete worker count (resolves `0` to the machine's available
    /// parallelism).
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        }
    }
}

/// Structured outcome accounting of one collection run: what profiled
/// cleanly, what was retried or re-dispatched, what was quarantined, and
/// what was lost — plus the run's cache traffic. One poisoned grid point
/// shows up here instead of killing the campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CollectReport {
    /// Grid points that yielded usable rows.
    pub ok: u64,
    /// Grid points skipped because the run does not fit in device memory
    /// (the paper's fail-to-execute cleaning).
    pub oom_skipped: u64,
    /// Grid points rejected at the profile boundary (zero batch, empty
    /// network).
    pub invalid_requests: u64,
    /// Total retry attempts performed across all grid points.
    pub retried: u64,
    /// Grid points that failed at least once but eventually succeeded.
    pub recovered: u64,
    /// Attempts discarded and re-dispatched for exceeding the straggler
    /// threshold.
    pub stragglers: u64,
    /// Attempts rejected for invalid times (NaN/Inf/non-positive).
    pub corrupt_measurements: u64,
    /// Experiments removed by the MAD-based outlier quarantine.
    pub quarantined: u64,
    /// Grid points whose job panicked (isolated; only that point is lost).
    pub panicked: u64,
    /// Grid points with no usable measurement after the retry budget
    /// (includes panicked points).
    pub dropped: u64,
    /// The run's cache traffic.
    pub cache: CacheStats,
}

impl CollectReport {
    /// A report for a run fully served from cache.
    fn from_cache(cache: CacheStats) -> Self {
        CollectReport {
            cache,
            ..CollectReport::default()
        }
    }

    /// Whether every grid point produced its measurement without faults,
    /// retries or losses.
    pub fn is_clean(&self) -> bool {
        self.retried == 0
            && self.recovered == 0
            && self.stragglers == 0
            && self.corrupt_measurements == 0
            && self.quarantined == 0
            && self.panicked == 0
            && self.dropped == 0
            && self.invalid_requests == 0
    }

    /// The one-line per-run summary experiments print, extending the
    /// cache-stats line with the resilience counters.
    pub fn summary(&self, wall_seconds: f64) -> String {
        format!(
            "collect: {} ok, {} oom-skipped, {} invalid, {} retried, {} recovered, {} stragglers, {} corrupt-meas, {} quarantined, {} panicked, {} dropped | {}",
            self.ok,
            self.oom_skipped,
            self.invalid_requests,
            self.retried,
            self.recovered,
            self.stragglers,
            self.corrupt_measurements,
            self.quarantined,
            self.panicked,
            self.dropped,
            self.cache.summary(wall_seconds)
        )
    }
}

/// One grid point's usable rows.
type GridRows = (NetworkRow, Vec<LayerRow>, Vec<KernelRow>);

/// How one grid point ended.
enum PointOutcome {
    /// A usable measurement.
    Rows(Box<GridRows>),
    /// Skipped: does not fit in device memory (the paper's cleaning of
    /// fail-to-execute experiments).
    OomSkipped,
    /// Rejected at the profile boundary (zero batch / empty network).
    InvalidRequest,
    /// No usable measurement within the retry budget.
    Dropped,
}

/// Per-point resilience counters, folded into the [`CollectReport`].
#[derive(Default)]
struct PointStats {
    retried: u64,
    recovered: u64,
    stragglers: u64,
    corrupt: u64,
}

/// Profiles one `(gpu, network, batch)` grid point on the clean simulator
/// — the zero-overhead fast path taken when no fault plan is armed.
fn profile_point(
    gpu: &GpuSpec,
    net: &Network,
    batch: usize,
    timing: &TimingModel,
    mode: CollectMode,
) -> PointOutcome {
    let profiler = Profiler::with_timing(gpu.clone(), timing.clone());
    let result = match mode {
        CollectMode::Inference => profiler.profile(net, batch),
        CollectMode::Training => profiler.profile_training(net, batch),
    };
    match result {
        Ok(trace) => PointOutcome::Rows(Box::new(trace_rows(&trace, net))),
        Err(ProfileError::OutOfMemory { .. }) => PointOutcome::OomSkipped,
        Err(ProfileError::ZeroBatch { .. } | ProfileError::EmptyNetwork { .. }) => {
            PointOutcome::InvalidRequest
        }
        // The clean simulator never fails transiently; if it ever does,
        // losing the point (not the campaign) is the right degradation.
        Err(ProfileError::Transient { .. }) => PointOutcome::Dropped,
    }
}

/// How one profiling attempt failed (drives the retry classification).
enum AttemptError {
    Oom,
    Invalid,
    Transient,
    /// A replicate was unwholesome (NaN/Inf/non-positive time): nothing
    /// usable came out of the attempt.
    Corrupt,
    /// The two replicates disagreed byte-for-byte: a silent (finite)
    /// corruption was detected statistically. The first replicate is
    /// carried so an exhausted retry budget can still ingest it — the
    /// scale-outlier screen quarantines whatever damage survives.
    Disagree(Box<Trace>),
    /// The attempt succeeded but exceeded the straggler threshold; the
    /// trace is carried so the run can still be accepted when the retry
    /// budget runs out (a slow valid measurement beats no measurement).
    Slow(Box<Trace>),
}

/// Profiles one grid point through a fault plan with bounded retries,
/// exponential backoff, straggler re-dispatch and measurement validity
/// screening.
///
/// Every attempt takes **two replicate measurements** (fault-stream
/// indices `2k` and `2k + 1` for retry attempt `k`) and accepts only when
/// they agree byte-for-byte. Validity screening catches NaN/Inf/negative
/// corruption per trace; replicate agreement catches the *silent* finite
/// corruptions (scale outliers) that no per-trace check can see. The
/// profiler is deterministic, so clean replicates always agree — any
/// disagreement proves one replicate is damaged and the attempt retries
/// on a fresh fault draw.
/// The fault-handling context of one resilient grid point: the fault
/// universe, the retry budget and the (injectable) clock elapsed-time
/// decisions are measured on.
struct Resilience<'a> {
    plan: &'a FaultPlan,
    retries: u32,
    clock: &'a dyn Clock,
}

fn profile_point_resilient(
    gpu: &GpuSpec,
    net: &Network,
    batch: usize,
    timing: &TimingModel,
    mode: CollectMode,
    res: &Resilience<'_>,
) -> (PointOutcome, PointStats) {
    let Resilience {
        plan,
        retries,
        clock,
    } = *res;
    let mut st = PointStats::default();
    let profiler = Profiler::with_timing(gpu.clone(), timing.clone());
    let faulty = FaultyProfiler::new(profiler, plan.clone());
    // An attempt slower than this is discarded and re-dispatched while
    // retries remain. Injected stragglers sleep the full delay, clean
    // simulated profiles finish in microseconds, so 60% of the delay
    // separates the two without false positives.
    let straggler_limit = plan.straggler_delay.mul_f64(0.6);
    let policy = RetryPolicy {
        max_retries: retries,
        backoff: Backoff::fast(
            plan.seed ^ hash_with(net.name(), batch as u64) ^ hash_with(&gpu.name, 0x0B0FF),
        ),
    };
    let outcome = retry_with_backoff(
        &policy,
        clock,
        |e: &AttemptError| match e {
            // The workload itself is infeasible or malformed: no retry
            // can change that.
            AttemptError::Oom | AttemptError::Invalid => RetryClass::Permanent,
            AttemptError::Transient
            | AttemptError::Corrupt
            | AttemptError::Disagree(_)
            | AttemptError::Slow(_) => RetryClass::Retriable,
        },
        |attempt| {
            // Elapsed time here is *result-affecting* (it decides straggler
            // re-dispatch), so it must come through the injectable [`Clock`]
            // — never from a bare `Instant::now()` (the determinism-hygiene
            // lint pins this down). Tests drive it with a fake clock.
            let t0 = clock.now();
            let run = |sub: u32| -> Result<Trace, AttemptError> {
                let result = match mode {
                    CollectMode::Inference => faulty.profile_attempt(net, batch, 2 * attempt + sub),
                    CollectMode::Training => {
                        faulty.profile_training_attempt(net, batch, 2 * attempt + sub)
                    }
                };
                match result {
                    Ok(trace) => Ok(trace),
                    Err(ProfileError::Transient { .. }) => Err(AttemptError::Transient),
                    Err(ProfileError::OutOfMemory { .. }) => Err(AttemptError::Oom),
                    Err(ProfileError::ZeroBatch { .. } | ProfileError::EmptyNetwork { .. }) => {
                        Err(AttemptError::Invalid)
                    }
                }
            };
            let first = run(0)?;
            let second = run(1)?;
            if !hygiene::trace_is_wholesome(&first) || !hygiene::trace_is_wholesome(&second) {
                // NaN/Inf/non-positive times: detectable per trace, so
                // reject at the boundary and retry.
                st.corrupt += 1;
                Err(AttemptError::Corrupt)
            } else if first != second {
                // Both replicates are individually plausible but they
                // disagree: a silent corruption (scale outlier) hit one of
                // them. Detected statistically, retried like any corrupt
                // measurement.
                st.corrupt += 1;
                Err(AttemptError::Disagree(Box::new(first)))
            } else if clock.now().saturating_sub(t0) >= straggler_limit {
                st.stragglers += 1;
                Err(AttemptError::Slow(Box::new(first)))
            } else {
                Ok(first)
            }
        },
    );
    st.retried += u64::from(outcome.retries());
    let recovered = outcome.attempts > 1;
    match outcome.result {
        Ok(trace) => {
            st.recovered += u64::from(recovered);
            (PointOutcome::Rows(Box::new(trace_rows(&trace, net))), st)
        }
        // Every retry straggled, but the measurement itself is valid (an
        // injected straggler delays, it does not damage — and the
        // replicates agreed, so the trace is verified clean): accept the
        // last trace rather than losing the point.
        Err(AttemptError::Slow(trace)) => {
            st.recovered += u64::from(recovered);
            (PointOutcome::Rows(Box::new(trace_rows(&trace, net))), st)
        }
        // The budget ran out with the replicates still disagreeing: ingest
        // the first replicate anyway — it is finite and plausible, and the
        // scale-outlier screen downstream quarantines it if it carries the
        // damage. Better a quarantinable row than a silently lost point.
        Err(AttemptError::Disagree(trace)) => {
            (PointOutcome::Rows(Box::new(trace_rows(&trace, net))), st)
        }
        Err(AttemptError::Oom) => (PointOutcome::OomSkipped, st),
        Err(AttemptError::Invalid) => (PointOutcome::InvalidRequest, st),
        Err(AttemptError::Transient | AttemptError::Corrupt) => (PointOutcome::Dropped, st),
    }
}

/// Runs the full profiling grid on work-stealing workers with per-job
/// panic isolation, stitching rows back in serial `(gpu, network, batch)`
/// order and folding per-point accounting into a [`CollectReport`].
fn run_grid(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    timing: &TimingModel,
    mode: CollectMode,
    opts: &CollectOptions,
) -> (Dataset, CollectReport) {
    let threads = opts.effective_threads();
    assert!(threads > 0, "need at least one worker thread");
    let per_gpu = nets.len() * batches.len();
    let jobs = gpus.len() * per_gpu;
    let mut ds = Dataset::new();
    let mut report = CollectReport::default();
    if jobs == 0 {
        return (ds, report);
    }
    let point = |i: usize| -> (PointOutcome, PointStats) {
        let gpu = &gpus[i / per_gpu];
        let rest = i % per_gpu;
        let net = &nets[rest / batches.len()];
        let batch = batches[rest % batches.len()];
        match &opts.fault {
            None => (
                profile_point(gpu, net, batch, timing, mode),
                PointStats::default(),
            ),
            Some(plan) => profile_point_resilient(
                gpu,
                net,
                batch,
                timing,
                mode,
                &Resilience {
                    plan,
                    retries: opts.retries,
                    clock: &SystemClock,
                },
            ),
        }
    };
    // Every job is individually catch_unwind-isolated: one poisoned grid
    // point loses that point only, never the campaign.
    for result in dnnperf_sched::run_indexed_catching(jobs, threads, point) {
        match result {
            Ok((outcome, st)) => {
                report.retried += st.retried;
                report.recovered += st.recovered;
                report.stragglers += st.stragglers;
                report.corrupt_measurements += st.corrupt;
                match outcome {
                    PointOutcome::Rows(rows) => {
                        let (n, l, k) = *rows;
                        report.ok += 1;
                        ds.networks.push(n);
                        ds.layers.extend(l);
                        ds.kernels.extend(k);
                    }
                    PointOutcome::OomSkipped => report.oom_skipped += 1,
                    PointOutcome::InvalidRequest => report.invalid_requests += 1,
                    PointOutcome::Dropped => report.dropped += 1,
                }
            }
            Err(panic) => {
                report.panicked += 1;
                report.dropped += 1;
                eprintln!(
                    "[collect] grid point {} panicked (isolated): {}",
                    panic.index,
                    panic.message()
                );
            }
        }
    }
    (ds, report)
}

/// The full engine: classified cache lookup, resilient parallel grid
/// profiling, outlier quarantine, cache fill.
///
/// This is the single path every public collection entry point funnels
/// through; it returns the dataset plus the run's structured
/// [`CollectReport`].
pub fn collect_engine(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    timing: &TimingModel,
    mode: CollectMode,
    opts: &CollectOptions,
) -> (Dataset, CollectReport) {
    let mut stats = CacheStats::default();
    let cache = opts.cache_dir.as_ref().map(DatasetCache::new);
    let key = cache.as_ref().map(|_| {
        let base = dataset_key(nets, gpus, batches, timing.seed(), mode);
        match &opts.fault {
            // Clean runs keep their PR-2 cache identity.
            None => base,
            // Fault-injected runs live under their own identity: the same
            // grid measured in a different fault universe (or with a
            // different retry budget / screen) may produce different rows.
            Some(plan) => {
                let mut h = Fnv::new();
                h.write_u64(base);
                h.write_u64(plan.digest());
                h.write_u64(u64::from(opts.retries));
                h.write_u64(u64::from(opts.screen_outliers));
                h.finish()
            }
        }
    });
    if let (Some(cache), Some(key)) = (&cache, key) {
        match cache.lookup(key) {
            CacheLookup::Hit(ds, bytes) => {
                // Trust but verify: a structurally valid entry carrying
                // invalid times (damaged payload digits) is corrupt too.
                if hygiene::dataset_is_wholesome(&ds) {
                    stats.hits += 1;
                    stats.bytes_read += bytes;
                    return (ds, CollectReport::from_cache(stats));
                }
                stats.corrupt += 1;
                stats.misses += 1;
            }
            CacheLookup::Miss => stats.misses += 1,
            // Corrupt entries recollect like misses but are surfaced: a
            // damaged cache is worth knowing about.
            CacheLookup::Corrupt => {
                stats.corrupt += 1;
                stats.misses += 1;
            }
        }
    }
    let (mut ds, mut report) = run_grid(nets, gpus, batches, timing, mode, opts);
    if opts.screen_outliers {
        // Silent ×k outliers that survived per-trace screening are only
        // visible statistically; quarantine them instead of training on
        // them.
        report.quarantined = hygiene::quarantine_scale_outliers(&mut ds);
    }
    if let (Some(cache), Some(key)) = (&cache, key) {
        // The cache is best-effort: a full disk must not fail collection.
        if let Ok(bytes) = cache.store(key, &ds) {
            stats.bytes_written += bytes;
        }
    }
    report.cache = stats;
    (ds, report)
}

/// Profiles every network on every GPU at every batch size, skipping
/// out-of-memory combinations (the paper's dataset cleaning).
///
/// # Examples
///
/// ```
/// use dnnperf_data::collect::collect;
/// use dnnperf_gpu::GpuSpec;
///
/// let nets = [dnnperf_dnn::zoo::mobilenet::mobilenet_v2(1.0, 1.0)];
/// let gpus = [GpuSpec::by_name("V100").unwrap()];
/// let ds = collect(&nets, &gpus, &[8, 32]);
/// assert_eq!(ds.networks.len(), 2);
/// ```
pub fn collect(nets: &[Network], gpus: &[GpuSpec], batches: &[usize]) -> Dataset {
    collect_with(nets, gpus, batches, &TimingModel::new())
}

/// Like [`collect`], but measuring under an explicit ground-truth timing
/// model. Robustness tests use this to show the predictors work in
/// alternative measurement universes, not just the canonical seed.
pub fn collect_with(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    timing: &TimingModel,
) -> Dataset {
    collect_engine(
        nets,
        gpus,
        batches,
        timing,
        CollectMode::Inference,
        &CollectOptions::serial(),
    )
    .0
}

/// Collection with full engine options (threads + cache + faults),
/// returning the run's cache traffic alongside the dataset.
pub fn collect_opts(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    opts: &CollectOptions,
) -> (Dataset, CacheStats) {
    let (ds, report) = collect_report_opts(nets, gpus, batches, opts);
    (ds, report.cache)
}

/// Like [`collect_opts`], but returning the full structured
/// [`CollectReport`] (resilience counters + cache traffic).
pub fn collect_report_opts(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    opts: &CollectOptions,
) -> (Dataset, CollectReport) {
    collect_engine(
        nets,
        gpus,
        batches,
        &TimingModel::new(),
        CollectMode::Inference,
        opts,
    )
}

/// Like [`collect`], but profiling on `threads` work-stealing worker
/// threads over the whole `(gpu, network, batch)` grid.
///
/// Row order (and therefore the resulting dataset) is **identical** to the
/// serial [`collect`]: grid points carry their serial index through the
/// pool and are stitched back in index order, preserving the
/// per-experiment row contiguity that [`Dataset::dedup`] and the mapping
/// table rely on. The conformance suite asserts `collect_parallel(..) ==
/// collect(..)` across randomized grids and thread counts.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn collect_parallel(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    threads: usize,
) -> Dataset {
    assert!(threads > 0, "need at least one worker thread");
    collect_opts(nets, gpus, batches, &CollectOptions::with_threads(threads)).0
}

/// The GPUs the paper's single-GPU models are trained and evaluated on
/// (Section 5.4): A100, A40, GTX 1080 Ti, TITAN RTX, V100.
pub fn evaluation_gpus() -> Vec<GpuSpec> {
    ["A100", "A40", "GTX 1080 Ti", "TITAN RTX", "V100"]
        .iter()
        .map(|n| match GpuSpec::by_name(n) {
            Some(g) => g,
            None => unreachable!("{n} is in the Table 1 catalogue"),
        })
        .collect()
}

/// The paper's training batch size (GPUs fully utilised).
pub const TRAIN_BATCH: usize = 512;

/// Like [`collect`], but measuring *training steps* (forward + backward +
/// optimizer update) instead of inference batches — the paper's future-work
/// extension. Out-of-memory combinations are skipped; training keeps all
/// activations alive, so feasible batch sizes are smaller than for
/// inference.
pub fn collect_training(nets: &[Network], gpus: &[GpuSpec], batches: &[usize]) -> Dataset {
    collect_training_opts(nets, gpus, batches, &CollectOptions::serial()).0
}

/// [`collect_training`] with full engine options: training collection gets
/// the same work-stealing parallelism and content-addressed caching as
/// inference collection (the two modes never share cache keys).
pub fn collect_training_opts(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    opts: &CollectOptions,
) -> (Dataset, CacheStats) {
    let (ds, report) = collect_training_report_opts(nets, gpus, batches, opts);
    (ds, report.cache)
}

/// Like [`collect_training_opts`], but returning the full structured
/// [`CollectReport`].
pub fn collect_training_report_opts(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    opts: &CollectOptions,
) -> (Dataset, CollectReport) {
    collect_engine(
        nets,
        gpus,
        batches,
        &TimingModel::new(),
        CollectMode::Training,
        opts,
    )
}

/// Collects the paper's main dataset: the full 646-network CNN zoo at the
/// training batch size on the five evaluation GPUs.
///
/// Honors `DNNPERF_THREADS` and `DNNPERF_CACHE_DIR` (see
/// [`CollectOptions::from_env`]) and prints the per-run cache-stats
/// summary line to stderr. With a warm cache the profiling step is skipped
/// entirely.
pub fn collect_main_cnn_dataset() -> Dataset {
    collect_main_cnn_dataset_opts(&CollectOptions::from_env())
}

/// [`collect_main_cnn_dataset`] with explicit engine options.
pub fn collect_main_cnn_dataset_opts(opts: &CollectOptions) -> Dataset {
    // Wall time here only feeds the stderr summary line (never the
    // dataset), but it still goes through the sanctioned clock so this
    // module stays free of bare `Instant::now()`.
    let clock = SystemClock;
    let t = clock.now();
    let nets = dnnperf_dnn::zoo::cnn_zoo();
    let (ds, report) = collect_report_opts(&nets, &evaluation_gpus(), &[TRAIN_BATCH], opts);
    eprintln!(
        "[collect] main CNN dataset: {} kernel rows | {}",
        ds.kernels.len(),
        report.summary(clock.now().saturating_sub(t).as_secs_f64())
    );
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_dnn::zoo;

    #[test]
    fn oom_runs_are_skipped() {
        let nets = [zoo::vgg::vgg16()];
        let gpus = [GpuSpec::by_name("Quadro P620").unwrap()];
        let ds = collect(&nets, &gpus, &[512]);
        assert!(ds.is_empty());
    }

    #[test]
    fn rows_are_consistent() {
        let nets = [zoo::resnet::resnet18()];
        let gpus = [GpuSpec::by_name("A100").unwrap()];
        let ds = collect(&nets, &gpus, &[32]);
        assert_eq!(ds.networks.len(), 1);
        let n = &ds.networks[0];
        assert_eq!(ds.kernels.len(), n.kernel_count as usize);
        assert_eq!(ds.layers.len(), zoo::resnet::resnet18().num_layers());
        // Layer seconds sum to the network GPU time.
        let layer_sum: f64 = ds.layers.iter().map(|l| l.seconds).sum();
        assert!((layer_sum - n.gpu_seconds).abs() < 1e-9);
        // E2E includes sync overhead on top of GPU time.
        assert!(n.e2e_seconds > n.gpu_seconds);
        // Kernel rows carry the owning layer's driver variables.
        let k0 = &ds.kernels[0];
        let l0 = ds
            .layers
            .iter()
            .find(|l| l.layer_index == k0.layer_index)
            .unwrap();
        assert_eq!(k0.in_elems, l0.in_elems);
        assert_eq!(k0.flops, l0.flops);
    }

    #[test]
    fn multiple_gpus_and_batches_multiply_rows() {
        let nets = [zoo::mobilenet::mobilenet_v2(0.5, 1.0)];
        let gpus = [
            GpuSpec::by_name("A100").unwrap(),
            GpuSpec::by_name("V100").unwrap(),
        ];
        let ds = collect(&nets, &gpus, &[8, 16, 32]);
        assert_eq!(ds.networks.len(), 6);
        assert_eq!(ds.gpu_names().len(), 2);
    }

    #[test]
    fn parallel_collection_matches_serial_exactly() {
        let nets: Vec<_> = (1..9)
            .map(|w| zoo::mobilenet::mobilenet_v2(w as f64 * 0.2, 1.0))
            .collect();
        let gpus = [
            GpuSpec::by_name("A100").unwrap(),
            GpuSpec::by_name("V100").unwrap(),
        ];
        let serial = collect(&nets, &gpus, &[8, 16]);
        for threads in [1, 3, 8, 32] {
            let parallel = collect_parallel(&nets, &gpus, &[8, 16], threads);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn training_collection_matches_modes() {
        // The folded grid runner must reproduce the direct profiler calls.
        let nets = [zoo::mobilenet::mobilenet_v2(0.5, 1.0)];
        let gpu = GpuSpec::by_name("A100").unwrap();
        let ds = collect_training(&nets, std::slice::from_ref(&gpu), &[16]);
        assert_eq!(ds.networks.len(), 1);
        let trace = Profiler::new(gpu.clone())
            .profile_training(&nets[0], 16)
            .unwrap();
        assert_eq!(ds.networks[0].e2e_seconds, trace.e2e_seconds);
        // Training parallelism is serial-identical too.
        let par = collect_training_opts(
            &nets,
            std::slice::from_ref(&gpu),
            &[16],
            &CollectOptions::with_threads(4),
        )
        .0;
        assert_eq!(ds, par);
    }

    #[test]
    fn cached_collection_hits_on_second_run() {
        let dir = std::env::temp_dir().join("dnnperf_collect_cache_test");
        let _ = std::fs::remove_dir_all(&dir);
        let nets = [zoo::mobilenet::mobilenet_v2(0.4, 1.0)];
        let gpus = [GpuSpec::by_name("V100").unwrap()];
        let opts = CollectOptions::with_threads(2).cached_at(&dir);
        let (cold, s1) = collect_opts(&nets, &gpus, &[8], &opts);
        assert_eq!((s1.hits, s1.misses), (0, 1));
        assert!(s1.bytes_written > 0);
        let (warm, s2) = collect_opts(&nets, &gpus, &[8], &opts);
        assert_eq!((s2.hits, s2.misses), (1, 0));
        assert_eq!(s2.bytes_read, s1.bytes_written);
        assert_eq!(cold, warm);
        // And both equal the uncached collection.
        assert_eq!(cold, collect(&nets, &gpus, &[8]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evaluation_gpus_match_paper() {
        let names: Vec<String> = evaluation_gpus().iter().map(|g| g.name.clone()).collect();
        assert_eq!(names, ["A100", "A40", "GTX 1080 Ti", "TITAN RTX", "V100"]);
    }
}
