//! Flat measurement records (the dataset's CSV row types).
//!
//! Shared strings (network, GPU, kernel names) are `Arc<str>` so the
//! million-row kernel table stays compact.

use std::sync::Arc;

/// One network-level measurement: a full inference batch on one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkRow {
    /// Network display name.
    pub network: Arc<str>,
    /// Network family tag.
    pub family: Arc<str>,
    /// GPU name.
    pub gpu: Arc<str>,
    /// Batch size.
    pub batch: u32,
    /// Total theoretical FLOPs of the batch.
    pub flops: u64,
    /// Total theoretical memory traffic of the batch in bytes.
    pub bytes: u64,
    /// Measured end-to-end batch time in seconds.
    pub e2e_seconds: f64,
    /// GPU kernel time in seconds (end-to-end minus CPU sync overhead).
    pub gpu_seconds: f64,
    /// Number of kernel launches.
    pub kernel_count: u32,
}

/// One layer-level measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRow {
    /// Network display name.
    pub network: Arc<str>,
    /// GPU name.
    pub gpu: Arc<str>,
    /// Batch size.
    pub batch: u32,
    /// Index of the layer within the network.
    pub layer_index: u32,
    /// Layer type tag (`"conv"`, `"bn"`, ...).
    pub layer_type: Arc<str>,
    /// Theoretical FLOPs of the layer for the batch.
    pub flops: u64,
    /// Input `N*C*H*W` element count.
    pub in_elems: u64,
    /// Output `N*C*H*W` element count.
    pub out_elems: u64,
    /// Measured layer time in seconds (sum of its kernels).
    pub seconds: f64,
}

/// One kernel-level measurement, carrying the layer-level driver variables
/// the paper's Kernel-Wise model regresses against (O5): input size, layer
/// FLOPs, output size.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRow {
    /// Network display name.
    pub network: Arc<str>,
    /// GPU name.
    pub gpu: Arc<str>,
    /// Batch size.
    pub batch: u32,
    /// Index of the owning layer.
    pub layer_index: u32,
    /// Owning layer's type tag.
    pub layer_type: Arc<str>,
    /// Kernel symbol name.
    pub kernel: Arc<str>,
    /// Owning layer's input `N*C*H*W`.
    pub in_elems: u64,
    /// Owning layer's theoretical FLOPs for the batch.
    pub flops: u64,
    /// Owning layer's output `N*C*H*W`.
    pub out_elems: u64,
    /// Measured kernel time in seconds.
    pub seconds: f64,
}

impl KernelRow {
    /// The three candidate driver variables, in the order
    /// (input, operation, output) used by kernel classification.
    pub fn drivers(&self) -> [f64; 3] {
        [
            self.in_elems as f64,
            self.flops as f64,
            self.out_elems as f64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drivers_order_is_input_operation_output() {
        let r = KernelRow {
            network: "n".into(),
            gpu: "g".into(),
            batch: 1,
            layer_index: 0,
            layer_type: "conv".into(),
            kernel: "k".into(),
            in_elems: 1,
            flops: 2,
            out_elems: 3,
            seconds: 0.5,
        };
        assert_eq!(r.drivers(), [1.0, 2.0, 3.0]);
    }
}
