//! Hand-rolled CSV serialization for the dataset tables.
//!
//! The tables are purely numeric plus comma-free identifiers, so a
//! dependency-free reader/writer is sufficient and keeps the format fully
//! under our control (see DESIGN.md's dependency notes).

use crate::dataset::Dataset;
use crate::record::{KernelRow, LayerRow, NetworkRow};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

/// Errors produced while reading or writing dataset CSV files.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed row.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv io error: {e}"),
            CsvError::Parse { line, reason } => {
                write!(f, "csv parse error at line {line}: {reason}")
            }
        }
    }
}

impl Error for CsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

pub(crate) const NETWORK_HEADER: &str =
    "network,family,gpu,batch,flops,bytes,e2e_seconds,gpu_seconds,kernel_count";
pub(crate) const LAYER_HEADER: &str =
    "network,gpu,batch,layer_index,layer_type,flops,in_elems,out_elems,seconds";
pub(crate) const KERNEL_HEADER: &str =
    "network,gpu,batch,layer_index,layer_type,kernel,in_elems,flops,out_elems,seconds";

fn check_field(s: &str) -> &str {
    debug_assert!(!s.contains(','), "CSV field contains a comma: {s}");
    s
}

/// Writes the three dataset tables as `networks.csv`, `layers.csv` and
/// `kernels.csv` under `dir`.
///
/// # Errors
///
/// Returns [`CsvError::Io`] on filesystem failures.
pub fn write_dataset(ds: &Dataset, dir: &Path) -> Result<(), CsvError> {
    std::fs::create_dir_all(dir)?;
    write_networks(&ds.networks, &dir.join("networks.csv"))?;
    write_layers(&ds.layers, &dir.join("layers.csv"))?;
    write_kernels(&ds.kernels, &dir.join("kernels.csv"))?;
    Ok(())
}

/// Reads a dataset previously written by [`write_dataset`].
///
/// # Errors
///
/// Returns [`CsvError::Io`] on filesystem failures and [`CsvError::Parse`]
/// on malformed rows.
pub fn read_dataset(dir: &Path) -> Result<Dataset, CsvError> {
    Ok(Dataset {
        networks: read_networks(&dir.join("networks.csv"))?,
        layers: read_layers(&dir.join("layers.csv"))?,
        kernels: read_kernels(&dir.join("kernels.csv"))?,
    })
}

/// Writes one network row (no trailing header logic); shared with the
/// dataset cache's single-file container format.
pub(crate) fn write_network_row<W: Write>(w: &mut W, r: &NetworkRow) -> io::Result<()> {
    writeln!(
        w,
        "{},{},{},{},{},{},{},{},{}",
        check_field(&r.network),
        check_field(&r.family),
        check_field(&r.gpu),
        r.batch,
        r.flops,
        r.bytes,
        r.e2e_seconds,
        r.gpu_seconds,
        r.kernel_count
    )
}

/// Writes one layer row; shared with the dataset cache.
pub(crate) fn write_layer_row<W: Write>(w: &mut W, r: &LayerRow) -> io::Result<()> {
    writeln!(
        w,
        "{},{},{},{},{},{},{},{},{}",
        check_field(&r.network),
        check_field(&r.gpu),
        r.batch,
        r.layer_index,
        check_field(&r.layer_type),
        r.flops,
        r.in_elems,
        r.out_elems,
        r.seconds
    )
}

/// Writes one kernel row; shared with the dataset cache.
pub(crate) fn write_kernel_row<W: Write>(w: &mut W, r: &KernelRow) -> io::Result<()> {
    writeln!(
        w,
        "{},{},{},{},{},{},{},{},{},{}",
        check_field(&r.network),
        check_field(&r.gpu),
        r.batch,
        r.layer_index,
        check_field(&r.layer_type),
        check_field(&r.kernel),
        r.in_elems,
        r.flops,
        r.out_elems,
        r.seconds
    )
}

fn write_networks(rows: &[NetworkRow], path: &Path) -> Result<(), CsvError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "{NETWORK_HEADER}")?;
    for r in rows {
        write_network_row(&mut w, r)?;
    }
    Ok(())
}

fn write_layers(rows: &[LayerRow], path: &Path) -> Result<(), CsvError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "{LAYER_HEADER}")?;
    for r in rows {
        write_layer_row(&mut w, r)?;
    }
    Ok(())
}

fn write_kernels(rows: &[KernelRow], path: &Path) -> Result<(), CsvError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "{KERNEL_HEADER}")?;
    for r in rows {
        write_kernel_row(&mut w, r)?;
    }
    Ok(())
}

struct Fields<'a> {
    parts: Vec<&'a str>,
    line: usize,
}

impl<'a> Fields<'a> {
    fn new(s: &'a str, line: usize, expect: usize) -> Result<Self, CsvError> {
        let parts: Vec<&str> = s.split(',').collect();
        if parts.len() != expect {
            return Err(CsvError::Parse {
                line,
                reason: format!("expected {expect} fields, got {}", parts.len()),
            });
        }
        Ok(Fields { parts, line })
    }

    fn str(&self, i: usize) -> Arc<str> {
        Arc::from(self.parts[i])
    }

    fn num<T: std::str::FromStr>(&self, i: usize) -> Result<T, CsvError> {
        self.parts[i].parse().map_err(|_| CsvError::Parse {
            line: self.line,
            reason: format!("bad numeric field {:?}", self.parts[i]),
        })
    }
}

fn read_lines(path: &Path, header: &str) -> Result<Vec<String>, CsvError> {
    let f = std::fs::File::open(path)?;
    let mut lines = io::BufReader::new(f).lines();
    match lines.next() {
        Some(Ok(h)) if h == header => {}
        Some(Ok(h)) => {
            return Err(CsvError::Parse {
                line: 1,
                reason: format!("unexpected header {h:?}"),
            })
        }
        Some(Err(e)) => return Err(e.into()),
        None => {
            return Err(CsvError::Parse {
                line: 1,
                reason: "empty file".into(),
            })
        }
    }
    lines.map(|l| l.map_err(CsvError::from)).collect()
}

/// Parses one network row. `line_no` is the 1-based line for diagnostics.
pub(crate) fn parse_network_row(line: &str, line_no: usize) -> Result<NetworkRow, CsvError> {
    let f = Fields::new(line, line_no, 9)?;
    Ok(NetworkRow {
        network: f.str(0),
        family: f.str(1),
        gpu: f.str(2),
        batch: f.num(3)?,
        flops: f.num(4)?,
        bytes: f.num(5)?,
        e2e_seconds: f.num(6)?,
        gpu_seconds: f.num(7)?,
        kernel_count: f.num(8)?,
    })
}

/// Parses one layer row.
pub(crate) fn parse_layer_row(line: &str, line_no: usize) -> Result<LayerRow, CsvError> {
    let f = Fields::new(line, line_no, 9)?;
    Ok(LayerRow {
        network: f.str(0),
        gpu: f.str(1),
        batch: f.num(2)?,
        layer_index: f.num(3)?,
        layer_type: f.str(4),
        flops: f.num(5)?,
        in_elems: f.num(6)?,
        out_elems: f.num(7)?,
        seconds: f.num(8)?,
    })
}

/// Parses one kernel row.
pub(crate) fn parse_kernel_row(line: &str, line_no: usize) -> Result<KernelRow, CsvError> {
    let f = Fields::new(line, line_no, 10)?;
    Ok(KernelRow {
        network: f.str(0),
        gpu: f.str(1),
        batch: f.num(2)?,
        layer_index: f.num(3)?,
        layer_type: f.str(4),
        kernel: f.str(5),
        in_elems: f.num(6)?,
        flops: f.num(7)?,
        out_elems: f.num(8)?,
        seconds: f.num(9)?,
    })
}

fn read_networks(path: &Path) -> Result<Vec<NetworkRow>, CsvError> {
    read_lines(path, NETWORK_HEADER)?
        .iter()
        .enumerate()
        .map(|(i, l)| parse_network_row(l, i + 2))
        .collect()
}

fn read_layers(path: &Path) -> Result<Vec<LayerRow>, CsvError> {
    read_lines(path, LAYER_HEADER)?
        .iter()
        .enumerate()
        .map(|(i, l)| parse_layer_row(l, i + 2))
        .collect()
}

fn read_kernels(path: &Path) -> Result<Vec<KernelRow>, CsvError> {
    read_lines(path, KERNEL_HEADER)?
        .iter()
        .enumerate()
        .map(|(i, l)| parse_kernel_row(l, i + 2))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::collect;
    use dnnperf_gpu::GpuSpec;

    #[test]
    fn round_trip_preserves_dataset() {
        let nets = [dnnperf_dnn::zoo::resnet::resnet18()];
        let gpus = [GpuSpec::by_name("A100").unwrap()];
        let ds = collect(&nets, &gpus, &[16]);
        let dir = std::env::temp_dir().join("dnnperf_csv_roundtrip_test");
        write_dataset(&ds, &dir).unwrap();
        let back = read_dataset(&dir).unwrap();
        assert_eq!(ds.networks.len(), back.networks.len());
        assert_eq!(ds.layers.len(), back.layers.len());
        assert_eq!(ds.kernels.len(), back.kernels.len());
        assert_eq!(ds.kernels[0], back.kernels[0]);
        assert_eq!(
            ds.networks[0].e2e_seconds, back.networks[0].e2e_seconds,
            "f64 must round-trip exactly through display formatting"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_header_is_rejected() {
        let dir = std::env::temp_dir().join("dnnperf_csv_badheader_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("networks.csv"), "nope\n").unwrap();
        std::fs::write(dir.join("layers.csv"), format!("{LAYER_HEADER}\n")).unwrap();
        std::fs::write(dir.join("kernels.csv"), format!("{KERNEL_HEADER}\n")).unwrap();
        let err = read_dataset(&dir).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_row_reports_line() {
        let dir = std::env::temp_dir().join("dnnperf_csv_badrow_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("networks.csv"),
            format!("{NETWORK_HEADER}\na,b,c,not_a_number,1,2,3,4,5\n"),
        )
        .unwrap();
        std::fs::write(dir.join("layers.csv"), format!("{LAYER_HEADER}\n")).unwrap();
        std::fs::write(dir.join("kernels.csv"), format!("{KERNEL_HEADER}\n")).unwrap();
        let err = read_dataset(&dir).unwrap_err();
        match err {
            CsvError::Parse { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("not_a_number"));
            }
            other => panic!("expected parse error, got {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn field_count_mismatch_is_parse_error() {
        let dir = std::env::temp_dir().join("dnnperf_csv_fieldcount_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("networks.csv"), format!("{NETWORK_HEADER}\na,b\n")).unwrap();
        std::fs::write(dir.join("layers.csv"), format!("{LAYER_HEADER}\n")).unwrap();
        std::fs::write(dir.join("kernels.csv"), format!("{KERNEL_HEADER}\n")).unwrap();
        assert!(matches!(read_dataset(&dir), Err(CsvError::Parse { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }
}
