//! The dnnperf measurement dataset.
//!
//! Mirrors the paper's data management section: measurements are flat rows
//! ("We prepare our dataset as CSV files, with columns including network
//! structure, batch size, layer FLOPs, hardware information,
//! kernel-by-kernel execution times, layer-to-kernel mapping, and end-to-end
//! execution times"), cleaned of duplicates and failed runs, and split into
//! a training set and a randomly selected 15% test set.
//!
//! # Examples
//!
//! ```
//! use dnnperf_data::collect::collect;
//! use dnnperf_dnn::zoo;
//! use dnnperf_gpu::GpuSpec;
//!
//! let nets = [zoo::resnet::resnet18(), zoo::vgg::vgg11()];
//! let gpus = [GpuSpec::by_name("A100").unwrap()];
//! let ds = collect(&nets, &gpus, &[64]);
//! assert_eq!(ds.networks.len(), 2);
//! assert!(ds.kernels.len() > 50);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod collect;
pub mod csv;
pub mod dataset;
pub mod hygiene;
pub mod record;
pub mod split;
pub mod view;

pub use cache::{CacheLookup, CacheStats, CollectMode, DatasetCache};
pub use collect::{CollectOptions, CollectReport};
pub use dataset::Dataset;
pub use hygiene::{dataset_is_wholesome, quarantine_scale_outliers, trace_is_wholesome};
pub use record::{KernelRow, LayerRow, NetworkRow};
pub use split::split_names;
pub use view::{DatasetView, GroupView};
