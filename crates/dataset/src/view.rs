//! Columnar, group-indexed view over kernel rows.
//!
//! Model training used to group kernel rows by cloning them into
//! `BTreeMap<Arc<str>, Vec<…>>` buckets, and the classify and cluster
//! stages then re-materialised per-driver feature vectors from each bucket
//! on every fit. [`DatasetView`] replaces all of that with one
//! structure-of-arrays snapshot built in a single pass: three driver
//! columns plus the target column, and a sort-by-kernel group index of row
//! ranges. Zero rows are cloned — the view borrows nothing from the source
//! rows except the interned kernel names (`Arc<str>` bumps), and both
//! training stages share the same columns.
//!
//! Group order is ascending by kernel symbol and rows keep their original
//! relative order within a group (the index sort is stable), so iterating
//! the view visits exactly the `(kernel, rows)` sequence the historical
//! `BTreeMap` grouping produced.

use crate::record::KernelRow;
use std::sync::Arc;

/// Columnar snapshot of kernel rows: SoA driver/target columns plus a
/// group index of per-kernel row ranges.
///
/// # Examples
///
/// ```
/// use dnnperf_data::collect::collect;
/// use dnnperf_data::view::DatasetView;
/// use dnnperf_dnn::zoo;
/// use dnnperf_gpu::GpuSpec;
///
/// let ds = collect(&[zoo::resnet::resnet18()], &[GpuSpec::by_name("A100").unwrap()], &[8]);
/// let refs: Vec<&_> = ds.kernels.iter().collect();
/// let view = DatasetView::from_refs(&refs);
/// assert_eq!(view.num_rows(), ds.kernels.len());
/// let mut total = 0;
/// for group in view.groups() {
///     assert_eq!(group.drivers.len(), 3);
///     total += group.seconds.len();
/// }
/// assert_eq!(total, view.num_rows());
/// ```
#[derive(Debug, Clone, Default)]
pub struct DatasetView {
    /// One kernel symbol per group, ascending.
    kernels: Vec<Arc<str>>,
    /// Group `g` occupies column rows `bounds[g] .. bounds[g + 1]`;
    /// `bounds.len() == kernels.len() + 1`.
    bounds: Vec<usize>,
    /// Driver columns in `(input, operation, output)` order — the same
    /// order as [`KernelRow::drivers`].
    drivers: [Vec<f64>; 3],
    /// Measured kernel seconds, the regression target.
    seconds: Vec<f64>,
}

/// Borrowed slices of one kernel group inside a [`DatasetView`].
#[derive(Debug, Clone, Copy)]
pub struct GroupView<'a> {
    /// Kernel symbol of the group.
    pub kernel: &'a Arc<str>,
    /// Per-driver feature columns for the group's rows, in
    /// `(input, operation, output)` order.
    pub drivers: [&'a [f64]; 3],
    /// Target column for the group's rows.
    pub seconds: &'a [f64],
}

impl DatasetView {
    /// Builds the view from borrowed rows in one pass: a stable sort of row
    /// indices by kernel symbol, then a single sweep filling the columns
    /// and detecting group boundaries. No row is cloned.
    pub fn from_refs(rows: &[&KernelRow]) -> Self {
        let mut order: Vec<u32> = (0..rows.len() as u32).collect();
        order.sort_by(|a, b| {
            let ka = rows.get(*a as usize).map(|r| &r.kernel);
            let kb = rows.get(*b as usize).map(|r| &r.kernel);
            ka.cmp(&kb)
        });
        let mut kernels: Vec<Arc<str>> = Vec::new();
        let mut bounds: Vec<usize> = vec![0];
        let mut drivers: [Vec<f64>; 3] = [
            Vec::with_capacity(rows.len()),
            Vec::with_capacity(rows.len()),
            Vec::with_capacity(rows.len()),
        ];
        let mut seconds: Vec<f64> = Vec::with_capacity(rows.len());
        for idx in order {
            let Some(row) = rows.get(idx as usize) else {
                continue;
            };
            if kernels.last() != Some(&row.kernel) {
                if !kernels.is_empty() {
                    bounds.push(seconds.len());
                }
                kernels.push(Arc::clone(&row.kernel));
            }
            let [din, dop, dout] = row.drivers();
            let [ci, co, cu] = &mut drivers;
            ci.push(din);
            co.push(dop);
            cu.push(dout);
            seconds.push(row.seconds);
        }
        bounds.push(seconds.len());
        if kernels.is_empty() {
            // Normalise the empty view: `bounds` is the single sentinel 0.
            bounds = vec![0];
        }
        DatasetView {
            kernels,
            bounds,
            drivers,
            seconds,
        }
    }

    /// Number of kernel groups.
    pub fn num_groups(&self) -> usize {
        self.kernels.len()
    }

    /// Total number of rows across all groups.
    pub fn num_rows(&self) -> usize {
        self.seconds.len()
    }

    /// The row range of group `g`, or `None` out of bounds.
    fn range(&self, g: usize) -> Option<std::ops::Range<usize>> {
        let lo = *self.bounds.get(g)?;
        let hi = *self.bounds.get(g + 1)?;
        Some(lo..hi)
    }

    /// Borrowed column slices of group `g`, or `None` out of bounds.
    pub fn group(&self, g: usize) -> Option<GroupView<'_>> {
        let kernel = self.kernels.get(g)?;
        let range = self.range(g)?;
        let [ci, co, cu] = &self.drivers;
        Some(GroupView {
            kernel,
            drivers: [
                ci.get(range.clone())?,
                co.get(range.clone())?,
                cu.get(range)?,
            ],
            seconds: self.seconds.get(self.range(g)?)?,
        })
    }

    /// Index of the group holding `kernel`, by binary search.
    pub fn group_index(&self, kernel: &str) -> Option<usize> {
        self.kernels
            .binary_search_by(|k| k.as_ref().cmp(kernel))
            .ok()
    }

    /// Iterates the groups in ascending kernel order.
    pub fn groups(&self) -> impl Iterator<Item = GroupView<'_>> + '_ {
        (0..self.num_groups()).filter_map(|g| self.group(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(kernel: &str, in_elems: u64, flops: u64, out_elems: u64, seconds: f64) -> KernelRow {
        KernelRow {
            network: "net".into(),
            gpu: "g".into(),
            batch: 1,
            layer_index: 0,
            layer_type: "conv".into(),
            kernel: kernel.into(),
            in_elems,
            flops,
            out_elems,
            seconds,
        }
    }

    #[test]
    fn empty_view_is_well_formed() {
        let v = DatasetView::from_refs(&[]);
        assert_eq!(v.num_groups(), 0);
        assert_eq!(v.num_rows(), 0);
        assert!(v.group(0).is_none());
        assert!(v.groups().next().is_none());
    }

    #[test]
    fn groups_sorted_by_kernel_rows_in_original_order() {
        let rows = [
            row("b", 1, 10, 100, 0.1),
            row("a", 2, 20, 200, 0.2),
            row("b", 3, 30, 300, 0.3),
            row("a", 4, 40, 400, 0.4),
        ];
        let refs: Vec<&KernelRow> = rows.iter().collect();
        let v = DatasetView::from_refs(&refs);
        assert_eq!(v.num_groups(), 2);
        assert_eq!(v.num_rows(), 4);
        let a = v.group(0).unwrap();
        assert_eq!(a.kernel.as_ref(), "a");
        assert_eq!(a.drivers[0], &[2.0, 4.0]);
        assert_eq!(a.drivers[1], &[20.0, 40.0]);
        assert_eq!(a.drivers[2], &[200.0, 400.0]);
        assert_eq!(a.seconds, &[0.2, 0.4]);
        let b = v.group(1).unwrap();
        assert_eq!(b.kernel.as_ref(), "b");
        assert_eq!(b.seconds, &[0.1, 0.3]);
    }

    #[test]
    fn group_index_finds_by_name() {
        let rows = [row("x", 1, 1, 1, 1.0), row("m", 1, 1, 1, 1.0)];
        let refs: Vec<&KernelRow> = rows.iter().collect();
        let v = DatasetView::from_refs(&refs);
        assert_eq!(v.group_index("m"), Some(0));
        assert_eq!(v.group_index("x"), Some(1));
        assert_eq!(v.group_index("zzz"), None);
    }

    #[test]
    fn matches_btreemap_grouping_order() {
        use std::collections::BTreeMap;
        let rows = [
            row("k2", 1, 2, 3, 0.5),
            row("k1", 4, 5, 6, 0.6),
            row("k2", 7, 8, 9, 0.7),
            row("k0", 1, 1, 1, 0.8),
        ];
        let refs: Vec<&KernelRow> = rows.iter().collect();
        let mut groups: BTreeMap<Arc<str>, Vec<&KernelRow>> = BTreeMap::new();
        for r in &refs {
            groups.entry(Arc::clone(&r.kernel)).or_default().push(r);
        }
        let v = DatasetView::from_refs(&refs);
        for (g, (kernel, members)) in groups.iter().enumerate() {
            let gv = v.group(g).unwrap();
            assert_eq!(gv.kernel, kernel);
            let secs: Vec<f64> = members.iter().map(|r| r.seconds).collect();
            assert_eq!(gv.seconds, secs.as_slice());
        }
    }
}
