//! The [`Dataset`] container: network/layer/kernel tables plus cleaning,
//! filtering and summary statistics.

use crate::record::{KernelRow, LayerRow, NetworkRow};
use std::collections::BTreeSet;
use std::sync::Arc;

type ExperimentKey = (Arc<str>, Arc<str>, u32);

/// A measurement dataset: three row tables at network, layer and kernel
/// granularity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// Network-level rows.
    pub networks: Vec<NetworkRow>,
    /// Layer-level rows.
    pub layers: Vec<LayerRow>,
    /// Kernel-level rows.
    pub kernels: Vec<KernelRow>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Returns `true` if the dataset holds no rows at all.
    pub fn is_empty(&self) -> bool {
        self.networks.is_empty() && self.layers.is_empty() && self.kernels.is_empty()
    }

    /// Appends all rows of `other`.
    pub fn merge(&mut self, other: Dataset) {
        self.networks.extend(other.networks);
        self.layers.extend(other.layers);
        self.kernels.extend(other.kernels);
    }

    /// Removes duplicated experiments (the paper: "We clean the dataset by
    /// removing the duplications").
    ///
    /// An *experiment* is one (network, gpu, batch) run. Collection emits an
    /// experiment's rows contiguously, so a later row segment repeating an
    /// already-seen experiment key (e.g. after merging two collections that
    /// overlap) is dropped wholesale.
    pub fn dedup(&mut self) {
        // A segment ends when the experiment key changes OR the layer index
        // restarts (decreases) — the latter catches two identical runs that
        // ended up adjacent after a merge.
        fn drop_repeated_segments<R>(
            rows: &mut Vec<R>,
            key: impl Fn(&R) -> ExperimentKey,
            layer_index: impl Fn(&R) -> u32,
        ) {
            let mut seen: BTreeSet<ExperimentKey> = BTreeSet::new();
            let mut current: Option<(ExperimentKey, u32, bool)> = None;
            rows.retain(|r| {
                let k = key(r);
                let li = layer_index(r);
                match &current {
                    Some((ck, last_li, keep)) if *ck == k && li >= *last_li => {
                        let keep = *keep;
                        current = Some((k, li, keep));
                        keep
                    }
                    _ => {
                        let keep = seen.insert(k.clone());
                        current = Some((k, li, keep));
                        keep
                    }
                }
            });
        }
        // A network row IS a whole experiment: plain per-row dedup.
        let mut seen: BTreeSet<ExperimentKey> = BTreeSet::new();
        self.networks
            .retain(|r| seen.insert((r.network.clone(), r.gpu.clone(), r.batch)));
        drop_repeated_segments(
            &mut self.layers,
            |r| (r.network.clone(), r.gpu.clone(), r.batch),
            |r| r.layer_index,
        );
        drop_repeated_segments(
            &mut self.kernels,
            |r| (r.network.clone(), r.gpu.clone(), r.batch),
            |r| r.layer_index,
        );
    }

    /// Returns the subset of rows measured on `gpu`.
    pub fn for_gpu(&self, gpu: &str) -> Dataset {
        Dataset {
            networks: self
                .networks
                .iter()
                .filter(|r| &*r.gpu == gpu)
                .cloned()
                .collect(),
            layers: self
                .layers
                .iter()
                .filter(|r| &*r.gpu == gpu)
                .cloned()
                .collect(),
            kernels: self
                .kernels
                .iter()
                .filter(|r| &*r.gpu == gpu)
                .cloned()
                .collect(),
        }
    }

    /// Returns the subset of rows belonging to the named networks.
    pub fn for_networks(&self, names: &BTreeSet<String>) -> Dataset {
        Dataset {
            networks: self
                .networks
                .iter()
                .filter(|r| names.contains(&*r.network as &str))
                .cloned()
                .collect(),
            layers: self
                .layers
                .iter()
                .filter(|r| names.contains(&*r.network as &str))
                .cloned()
                .collect(),
            kernels: self
                .kernels
                .iter()
                .filter(|r| names.contains(&*r.network as &str))
                .cloned()
                .collect(),
        }
    }

    /// Distinct network names present in the dataset, in first-seen order.
    pub fn network_names(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut names = Vec::new();
        for r in &self.networks {
            if seen.insert(r.network.clone()) {
                names.push(r.network.to_string());
            }
        }
        names
    }

    /// Distinct GPU names present in the dataset.
    pub fn gpu_names(&self) -> Vec<String> {
        let mut seen = BTreeSet::new();
        let mut names = Vec::new();
        for r in &self.networks {
            if seen.insert(r.gpu.clone()) {
                names.push(r.gpu.to_string());
            }
        }
        names
    }

    /// Number of distinct kernel symbols recorded (the paper reports ~182
    /// per GPU).
    pub fn distinct_kernels(&self) -> usize {
        self.kernels
            .iter()
            .map(|r| r.kernel.clone())
            .collect::<BTreeSet<_>>()
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn krow(net: &str, gpu: &str, batch: u32, li: u32, k: &str) -> KernelRow {
        KernelRow {
            network: net.into(),
            gpu: gpu.into(),
            batch,
            layer_index: li,
            layer_type: Arc::from("conv"),
            kernel: k.into(),
            in_elems: 1,
            flops: 2,
            out_elems: 3,
            seconds: 0.1,
        }
    }

    fn nrow(net: &str, gpu: &str, batch: u32) -> NetworkRow {
        NetworkRow {
            network: net.into(),
            family: Arc::from("resnet"),
            gpu: gpu.into(),
            batch,
            flops: 10,
            bytes: 20,
            e2e_seconds: 1.0,
            gpu_seconds: 0.9,
            kernel_count: 2,
        }
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Dataset::new();
        a.networks.push(nrow("r18", "A100", 64));
        let mut b = Dataset::new();
        b.networks.push(nrow("r34", "A100", 64));
        a.merge(b);
        assert_eq!(a.networks.len(), 2);
    }

    #[test]
    fn dedup_removes_repeated_experiments() {
        let mut d = Dataset::new();
        d.networks.push(nrow("r18", "A100", 64));
        d.networks.push(nrow("r18", "A100", 64));
        d.networks.push(nrow("r18", "A100", 128));
        // One experiment segment with two same-name kernels in one layer:
        // legitimate, must survive dedup.
        d.kernels.push(krow("r18", "A100", 64, 0, "a"));
        d.kernels.push(krow("r18", "A100", 64, 0, "a"));
        d.dedup();
        assert_eq!(d.networks.len(), 2);
        assert_eq!(d.kernels.len(), 2);
        // A later, separated segment repeating the experiment key is dropped
        // wholesale; fresh experiments survive.
        d.kernels.push(krow("r18", "A100", 128, 0, "c"));
        d.kernels.push(krow("r18", "A100", 64, 0, "a"));
        d.kernels.push(krow("r18", "A100", 64, 1, "b"));
        d.dedup();
        assert_eq!(d.kernels.len(), 3);
    }

    #[test]
    fn for_gpu_filters() {
        let mut d = Dataset::new();
        d.networks.push(nrow("r18", "A100", 64));
        d.networks.push(nrow("r18", "V100", 64));
        d.kernels.push(krow("r18", "A100", 64, 0, "a"));
        let a = d.for_gpu("A100");
        assert_eq!(a.networks.len(), 1);
        assert_eq!(a.kernels.len(), 1);
        assert!(d.for_gpu("TITAN RTX").is_empty());
    }

    #[test]
    fn name_listings() {
        let mut d = Dataset::new();
        d.networks.push(nrow("r18", "A100", 64));
        d.networks.push(nrow("r34", "A100", 64));
        d.networks.push(nrow("r18", "V100", 64));
        assert_eq!(d.network_names(), vec!["r18", "r34"]);
        assert_eq!(d.gpu_names(), vec!["A100", "V100"]);
    }

    #[test]
    fn distinct_kernels_counts_symbols() {
        let mut d = Dataset::new();
        d.kernels.push(krow("r18", "A100", 64, 0, "a"));
        d.kernels.push(krow("r18", "A100", 64, 1, "a"));
        d.kernels.push(krow("r18", "A100", 64, 2, "b"));
        assert_eq!(d.distinct_kernels(), 2);
    }
}
