//! Train/test splitting.
//!
//! The paper partitions by network: "The test set is a randomly selected 15%
//! executions from the dataset, while the rest is the training set", with
//! the S-curve X axes labelled "percentage of the network number in the test
//! set". Splitting whole networks (rather than individual rows) also keeps
//! the evaluation honest: the test networks' kernels are predicted from
//! other networks' measurements.

use crate::dataset::Dataset;
use dnnperf_testkit::hashrng::Rng;
use std::collections::BTreeSet;

/// The paper's test fraction.
pub const TEST_FRACTION: f64 = 0.15;

/// Randomly partitions `names` into (train, test) with the given test
/// fraction. Deterministic for a given `seed`.
///
/// # Panics
///
/// Panics if `test_fraction` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// let names: Vec<String> = (0..100).map(|i| format!("net{i}")).collect();
/// let (train, test) = dnnperf_data::split_names(&names, 0.15, 7);
/// assert_eq!(test.len(), 15);
/// assert_eq!(train.len() + test.len(), 100);
/// ```
pub fn split_names(names: &[String], test_fraction: f64, seed: u64) -> (Vec<String>, Vec<String>) {
    assert!(
        (0.0..=1.0).contains(&test_fraction),
        "test fraction must be within [0, 1]"
    );
    let mut shuffled: Vec<String> = names.to_vec();
    // In-tree seeded Fisher–Yates (SplitMix64 stream): deterministic for a
    // given seed across platforms and releases, no external RNG crate.
    Rng::new(seed).shuffle(&mut shuffled);
    let n_test = (names.len() as f64 * test_fraction).round() as usize;
    let test = shuffled.split_off(shuffled.len() - n_test.min(shuffled.len()));
    (shuffled, test)
}

/// Splits a dataset into (train, test) by network, with the paper's 15%
/// test fraction.
pub fn split_dataset(ds: &Dataset, seed: u64) -> (Dataset, Dataset) {
    let names = ds.network_names();
    let (train, test) = split_names(&names, TEST_FRACTION, seed);
    let train: BTreeSet<String> = train.into_iter().collect();
    let test: BTreeSet<String> = test.into_iter().collect();
    (ds.for_networks(&train), ds.for_networks(&test))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("net{i}")).collect()
    }

    #[test]
    fn split_is_a_partition() {
        let all = names(200);
        let (train, test) = split_names(&all, 0.15, 42);
        assert_eq!(train.len() + test.len(), all.len());
        let union: BTreeSet<&String> = train.iter().chain(&test).collect();
        assert_eq!(union.len(), all.len());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let all = names(50);
        assert_eq!(split_names(&all, 0.2, 1), split_names(&all, 0.2, 1));
        assert_ne!(split_names(&all, 0.2, 1).1, split_names(&all, 0.2, 2).1);
    }

    #[test]
    fn extreme_fractions() {
        let all = names(10);
        let (train, test) = split_names(&all, 0.0, 3);
        assert!(test.is_empty());
        assert_eq!(train.len(), 10);
        let (train, test) = split_names(&all, 1.0, 3);
        assert!(train.is_empty());
        assert_eq!(test.len(), 10);
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn bad_fraction_panics() {
        split_names(&names(4), 1.5, 0);
    }

    #[test]
    fn split_permutation_is_pinned() {
        // Locks the exact shuffle so dataset splits never silently change
        // between releases (the split is part of every reported result).
        let (train, test) = split_names(&names(8), 0.25, 42);
        assert_eq!(test, vec!["net6".to_string(), "net2".to_string()]);
        assert_eq!(
            train,
            ["net1", "net3", "net4", "net5", "net0", "net7"]
                .map(String::from)
                .to_vec()
        );
    }

    #[test]
    fn dataset_split_partitions_rows() {
        use dnnperf_gpu::GpuSpec;
        let nets = [
            dnnperf_dnn::zoo::resnet::resnet18(),
            dnnperf_dnn::zoo::vgg::vgg11(),
            dnnperf_dnn::zoo::mobilenet::mobilenet_v2(0.5, 1.0),
            dnnperf_dnn::zoo::squeezenet::squeezenet(128, 128, 0.125),
        ];
        let ds = crate::collect::collect(&nets, &[GpuSpec::by_name("A100").unwrap()], &[16]);
        let (train, test) = split_dataset(&ds, 9);
        assert_eq!(
            train.networks.len() + test.networks.len(),
            ds.networks.len()
        );
        assert_eq!(train.kernels.len() + test.kernels.len(), ds.kernels.len());
        // No network appears on both sides.
        let tr: BTreeSet<String> = train.network_names().into_iter().collect();
        for n in test.network_names() {
            assert!(!tr.contains(&n));
        }
    }
}
