//! Content-addressed on-disk dataset cache.
//!
//! Every experiment binary re-collects the main CNN-zoo dataset — hundreds
//! of networks on several GPUs, producing on the order of a million kernel
//! rows — so the end-to-end reproduction pays the profiling cost over and
//! over. This module memoizes a collection request on disk, keyed by a
//! digest of everything that determines its result:
//!
//! * the **workloads**: network names, families, input shapes, layer
//!   counts and per-layer FLOPs/bytes;
//! * the **hardware**: every field of every [`GpuSpec`];
//! * the **grid**: the batch-size list (order-sensitive, like the grid);
//! * the **measurement universe**: the [`TimingModel`] seed and the
//!   collection mode (inference vs training).
//!
//! The digest deliberately covers *identities*, not simulator internals:
//! the predictors still never see anything but the produced rows (see
//! DESIGN.md, "dataset cache"). Change any input and the key changes, so a
//! stale entry can never be returned as fresh.
//!
//! Entries are single files named `<key>.dsc` holding a versioned header,
//! the three row tables in the exact CSV row format of [`crate::csv`], and
//! a trailing `end` marker. Writers write to a unique temp file and
//! `rename(2)` it into place — atomic on POSIX — so concurrent writers of
//! the same key race benignly (last complete file wins) and readers never
//! observe a torn entry. Any malformed, truncated or version-mismatched
//! entry is treated as a miss and recollected.

use crate::csv::{
    parse_kernel_row, parse_layer_row, parse_network_row, write_kernel_row, write_layer_row,
    write_network_row, KERNEL_HEADER, LAYER_HEADER, NETWORK_HEADER,
};
use crate::dataset::Dataset;
use dnnperf_dnn::flops::{layer_bytes, layer_flops};
use dnnperf_dnn::Network;
use dnnperf_gpu::GpuSpec;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk container format version. Bump on any layout change: old
/// entries then key-miss (the version participates in the digest) *and*
/// header-miss (the magic line embeds it), so both directions of skew fall
/// back to recollection.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Magic first line of every cache entry.
fn magic_line() -> String {
    format!("dnnperf-dataset-cache v{CACHE_FORMAT_VERSION}")
}

/// A streaming FNV-1a 64-bit hasher (std-only; the same construction the
/// workspace's `hashrng` uses for string hashing).
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Absorbs a length-prefixed string (prefixing prevents concatenation
    /// ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f64` by exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// What a collection run measures; part of the cache key because training
/// traces and inference traces of the same grid differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectMode {
    /// Forward inference batches (the paper's main dataset).
    Inference,
    /// Training steps: forward + backward + optimizer update.
    Training,
}

/// Computes the content address of a collection request.
///
/// Two requests get the same key iff they would produce the same dataset:
/// same networks (by name *and* structure), same GPUs (every spec field),
/// same batch list, same timing-model seed, same mode, same container
/// version.
pub fn dataset_key(
    nets: &[Network],
    gpus: &[GpuSpec],
    batches: &[usize],
    timing_seed: u64,
    mode: CollectMode,
) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(CACHE_FORMAT_VERSION as u64);
    h.write_u64(timing_seed);
    h.write_u64(matches!(mode, CollectMode::Training) as u64);
    h.write_u64(nets.len() as u64);
    for net in nets {
        h.write_str(net.name());
        h.write_str(&net.family().to_string());
        // The input shape's exact structure (not just element count).
        h.write_str(&format!("{:?}", net.input_shape()));
        h.write_u64(net.num_layers() as u64);
        for layer in net.layers() {
            h.write_u64(layer_flops(layer));
            h.write_u64(layer_bytes(layer));
        }
    }
    h.write_u64(gpus.len() as u64);
    for g in gpus {
        h.write_str(&g.name);
        h.write_f64(g.bandwidth_gbps);
        h.write_f64(g.memory_gb);
        h.write_f64(g.fp32_tflops);
        h.write_u64(g.tensor_cores as u64);
        h.write_u64(g.sm_count as u64);
    }
    h.write_u64(batches.len() as u64);
    for &b in batches {
        h.write_u64(b as u64);
    }
    h.finish()
}

/// Aggregate cache traffic of one collection run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from a valid cache entry.
    pub hits: u64,
    /// Requests that had to profile (no entry, stale, or caching disabled
    /// counts as neither).
    pub misses: u64,
    /// Entries that existed but were malformed, truncated, stale (format
    /// version skew) or stored under a mismatched key. These recollect
    /// like misses, but are surfaced separately: a corrupt entry means
    /// something damaged the cache, which silence would hide.
    pub corrupt: u64,
    /// Bytes read from cache entries.
    pub bytes_read: u64,
    /// Bytes written into new cache entries.
    pub bytes_written: u64,
}

impl CacheStats {
    /// Folds another run's traffic into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.corrupt += other.corrupt;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }

    /// The one-line per-run summary experiments print:
    /// `cache: 1 hit, 0 misses, 0 corrupt, 1234567 B read, 0 B written, 0.52s wall`.
    pub fn summary(&self, wall_seconds: f64) -> String {
        format!(
            "cache: {} hit{}, {} miss{}, {} corrupt, {} B read, {} B written, {:.2}s wall",
            self.hits,
            if self.hits == 1 { "" } else { "s" },
            self.misses,
            if self.misses == 1 { "" } else { "es" },
            self.corrupt,
            self.bytes_read,
            self.bytes_written,
            wall_seconds
        )
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache: {} hits, {} misses, {} corrupt, {} B read, {} B written",
            self.hits, self.misses, self.corrupt, self.bytes_read, self.bytes_written
        )
    }
}

/// Outcome of a classified cache probe (see [`DatasetCache::lookup`]).
#[derive(Debug)]
pub enum CacheLookup {
    /// A valid entry: the dataset and the entry's size in bytes.
    Hit(Dataset, u64),
    /// No entry file exists for the key.
    Miss,
    /// An entry file exists but is malformed, truncated, version-skewed or
    /// stored under a mismatched key; it will be overwritten on store.
    Corrupt,
}

/// Process-wide nonce so concurrent writers in one process never share a
/// temp file.
static TMP_NONCE: AtomicU64 = AtomicU64::new(0);

/// A content-addressed dataset cache rooted at one directory.
#[derive(Debug, Clone)]
pub struct DatasetCache {
    dir: PathBuf,
}

impl DatasetCache {
    /// Opens (without touching the filesystem) a cache rooted at `dir`.
    /// The directory is created lazily on first store.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DatasetCache { dir: dir.into() }
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for `key`.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.dsc"))
    }

    /// Loads the entry for `key`, returning the dataset and the entry's
    /// size in bytes. Returns `None` — never panics, never errors — when
    /// the entry is absent, truncated, corrupted, from a different format
    /// version, or stored under a mismatched key: all of those mean
    /// "recollect". Use [`DatasetCache::lookup`] to distinguish an absent
    /// entry from a damaged one.
    pub fn load(&self, key: u64) -> Option<(Dataset, u64)> {
        match self.lookup(key) {
            CacheLookup::Hit(ds, bytes) => Some((ds, bytes)),
            CacheLookup::Miss | CacheLookup::Corrupt => None,
        }
    }

    /// Probes the entry for `key`, classifying the result: a clean
    /// [`CacheLookup::Hit`], a plain [`CacheLookup::Miss`] (no entry
    /// file), or [`CacheLookup::Corrupt`] (an entry file exists but cannot
    /// be trusted). Corrupt covers truncation, damaged rows, format
    /// version skew and key mismatch — everything that previously read
    /// silently as a miss.
    pub fn lookup(&self, key: u64) -> CacheLookup {
        let path = self.entry_path(key);
        let file = match std::fs::File::open(&path) {
            Ok(f) => f,
            // An unopenable file only counts as corrupt if it exists.
            Err(_) => {
                return if path.exists() {
                    CacheLookup::Corrupt
                } else {
                    CacheLookup::Miss
                };
            }
        };
        match self.parse_entry(file, key) {
            Some((ds, bytes)) => CacheLookup::Hit(ds, bytes),
            None => CacheLookup::Corrupt,
        }
    }

    /// Parses one opened entry file; `None` on any damage.
    fn parse_entry(&self, file: std::fs::File, key: u64) -> Option<(Dataset, u64)> {
        let bytes = file.metadata().ok()?.len();
        let mut lines = BufReader::new(file).lines();
        let mut next = || lines.next()?.ok();

        if next()? != magic_line() {
            return None;
        }
        if next()? != format!("key {key:016x}") {
            return None;
        }
        let counts_line = next()?;
        let counts: Vec<usize> = counts_line
            .strip_prefix("counts ")?
            .split(' ')
            .map(|v| v.parse().ok())
            .collect::<Option<_>>()?;
        let [n_networks, n_layers, n_kernels] = counts.try_into().ok()?;

        if next()? != NETWORK_HEADER {
            return None;
        }
        let mut ds = Dataset::new();
        ds.networks.reserve(n_networks);
        for _ in 0..n_networks {
            ds.networks.push(parse_network_row(&next()?, 0).ok()?);
        }
        if next()? != LAYER_HEADER {
            return None;
        }
        ds.layers.reserve(n_layers);
        for _ in 0..n_layers {
            ds.layers.push(parse_layer_row(&next()?, 0).ok()?);
        }
        if next()? != KERNEL_HEADER {
            return None;
        }
        ds.kernels.reserve(n_kernels);
        for _ in 0..n_kernels {
            ds.kernels.push(parse_kernel_row(&next()?, 0).ok()?);
        }
        // Trailing marker guards against truncation after a whole table.
        if next()? != "end" {
            return None;
        }
        Some((ds, bytes))
    }

    /// Stores `ds` under `key` atomically (unique temp file + rename), and
    /// returns the number of bytes written.
    ///
    /// Concurrent stores of the same key are safe: each writer renames its
    /// own complete temp file over the entry, so the entry is always one
    /// writer's complete output.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers treat the cache as
    /// best-effort and may ignore them.
    pub fn store(&self, key: u64, ds: &Dataset) -> std::io::Result<u64> {
        std::fs::create_dir_all(&self.dir)?;
        let nonce = TMP_NONCE.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".{key:016x}.tmp.{}.{nonce}", std::process::id()));
        let result = (|| {
            let mut w = BufWriter::new(std::fs::File::create(&tmp)?);
            writeln!(w, "{}", magic_line())?;
            writeln!(w, "key {key:016x}")?;
            writeln!(
                w,
                "counts {} {} {}",
                ds.networks.len(),
                ds.layers.len(),
                ds.kernels.len()
            )?;
            writeln!(w, "{NETWORK_HEADER}")?;
            for r in &ds.networks {
                write_network_row(&mut w, r)?;
            }
            writeln!(w, "{LAYER_HEADER}")?;
            for r in &ds.layers {
                write_layer_row(&mut w, r)?;
            }
            writeln!(w, "{KERNEL_HEADER}")?;
            for r in &ds.kernels {
                write_kernel_row(&mut w, r)?;
            }
            writeln!(w, "end")?;
            w.flush()?;
            let bytes = w.get_ref().metadata()?.len();
            drop(w);
            std::fs::rename(&tmp, self.entry_path(key))?;
            Ok(bytes)
        })();
        if result.is_err() {
            // Best-effort: never leave temp litter behind a failed store.
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnnperf_dnn::zoo;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dnnperf_cache_unit_{name}"));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn small_dataset() -> Dataset {
        crate::collect::collect(
            &[zoo::mobilenet::mobilenet_v2(0.5, 1.0)],
            &[GpuSpec::by_name("V100").unwrap()],
            &[8],
        )
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = DatasetCache::new(tmp("roundtrip"));
        let ds = small_dataset();
        let written = cache.store(42, &ds).unwrap();
        let (back, read) = cache.load(42).unwrap();
        assert_eq!(ds, back);
        assert_eq!(written, read);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn missing_entry_is_none() {
        let cache = DatasetCache::new(tmp("missing"));
        assert!(cache.load(7).is_none());
    }

    #[test]
    fn key_mismatch_is_none() {
        // An entry stored under one key must not answer another (content
        // addressing, not path trust): simulate by copying the file.
        let cache = DatasetCache::new(tmp("keymismatch"));
        let ds = small_dataset();
        cache.store(1, &ds).unwrap();
        std::fs::copy(cache.entry_path(1), cache.entry_path(2)).unwrap();
        assert!(cache.load(1).is_some());
        assert!(cache.load(2).is_none());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn key_covers_every_input() {
        let nets = [
            zoo::mobilenet::mobilenet_v2(0.5, 1.0),
            zoo::resnet::resnet18(),
        ];
        let gpus = [
            GpuSpec::by_name("A100").unwrap(),
            GpuSpec::by_name("V100").unwrap(),
        ];
        let base = dataset_key(&nets, &gpus, &[8, 16], 1, CollectMode::Inference);
        // Same inputs: same key.
        assert_eq!(
            base,
            dataset_key(&nets, &gpus, &[8, 16], 1, CollectMode::Inference)
        );
        // Each varied input changes the key.
        assert_ne!(
            base,
            dataset_key(&nets[..1], &gpus, &[8, 16], 1, CollectMode::Inference)
        );
        assert_ne!(
            base,
            dataset_key(&nets, &gpus[..1], &[8, 16], 1, CollectMode::Inference)
        );
        assert_ne!(
            base,
            dataset_key(&nets, &gpus, &[8], 1, CollectMode::Inference)
        );
        assert_ne!(
            base,
            dataset_key(&nets, &gpus, &[8, 16], 2, CollectMode::Inference)
        );
        assert_ne!(
            base,
            dataset_key(&nets, &gpus, &[8, 16], 1, CollectMode::Training)
        );
        // A modified GPU spec (same name) changes the key.
        let mut modded = gpus.to_vec();
        modded[0] = modded[0].with_bandwidth(999.0);
        modded[0].name = gpus[0].name.clone();
        assert_ne!(
            base,
            dataset_key(&nets, &modded, &[8, 16], 1, CollectMode::Inference)
        );
    }

    #[test]
    fn stats_summary_mentions_all_fields() {
        let s = CacheStats {
            hits: 1,
            misses: 0,
            corrupt: 2,
            bytes_read: 10,
            bytes_written: 0,
        };
        let line = s.summary(0.5);
        assert!(line.contains("1 hit,"), "{line}");
        assert!(line.contains("0 misses"), "{line}");
        assert!(line.contains("2 corrupt"), "{line}");
        assert!(line.contains("10 B read"), "{line}");
        assert!(line.contains("0.50s wall"), "{line}");
    }

    #[test]
    fn lookup_classifies_miss_vs_corrupt() {
        let cache = DatasetCache::new(tmp("lookup_classify"));
        // Absent entry: a plain miss.
        assert!(matches!(cache.lookup(3), CacheLookup::Miss));
        // Damaged entry: corrupt, not a silent miss.
        let ds = small_dataset();
        cache.store(3, &ds).unwrap();
        assert!(matches!(cache.lookup(3), CacheLookup::Hit(..)));
        std::fs::write(cache.entry_path(3), b"dnnperf-dataset-cache v1\ngarbage\n").unwrap();
        assert!(matches!(cache.lookup(3), CacheLookup::Corrupt));
        // Key mismatch also classifies as corrupt.
        cache.store(4, &ds).unwrap();
        std::fs::copy(cache.entry_path(4), cache.entry_path(5)).unwrap();
        assert!(matches!(cache.lookup(5), CacheLookup::Corrupt));
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
