//! Measurement hygiene: validity screening and statistical outlier
//! quarantine at dataset ingest.
//!
//! Real profiling streams contain two kinds of damage the paper's cleaning
//! step must handle before training:
//!
//! * **Invalid measurements** — NaN/Inf/zero/negative times. These are
//!   detectable per-trace, so collection rejects them at the profile
//!   boundary ([`trace_is_wholesome`]) and retries; a dataset loaded from
//!   an external source (or a damaged cache entry) is re-screened with
//!   [`dataset_is_wholesome`].
//! * **Silent outliers** — finite, positive, but wildly wrong (a kernel
//!   measured ×40 slow because a co-located job stole the SMs). These are
//!   only detectable *statistically*, by comparing against replicate
//!   measurements of **identical** work — never merely similar work:
//!   [`quarantine_scale_outliers`] groups kernel rows that share the same
//!   GPU, kernel, batch *and* work descriptors (FLOPs, element counts), so
//!   every member of a group measures the exact same computation. A row
//!   that sits absurdly far from its group's median time marks the whole
//!   owning experiment for removal (the paper trains on experiments, so a
//!   partly-poisoned experiment is not worth keeping).
//!
//! Quarantine is conservative by construction: the threshold has an
//! absolute floor (×8 in either direction), so the natural spread of clean
//! data — which the hidden timing model's noise keeps well under ×2 —
//! never trips it. Clean datasets therefore pass through **byte-identical**,
//! which the fault-injection conformance suite relies on.

use crate::dataset::Dataset;
use dnnperf_gpu::Trace;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Experiment identity: one `(network, gpu, batch)` run.
type ExperimentKey = (Arc<str>, Arc<str>, u32);

/// Work identity of a kernel row: `(gpu, kernel, batch, flops, in_elems,
/// out_elems)`. Rows sharing a work key measured the exact same
/// computation, so their times are comparable replicates.
type WorkKey = (Arc<str>, Arc<str>, u32, u64, u64, u64);

fn work_key(r: &crate::KernelRow) -> WorkKey {
    (
        r.gpu.clone(),
        r.kernel.clone(),
        r.batch,
        r.flops,
        r.in_elems,
        r.out_elems,
    )
}

/// Whether a single measured time is usable for training.
pub fn time_is_valid(seconds: f64) -> bool {
    seconds.is_finite() && seconds > 0.0
}

/// Whether every time in `trace` (per-kernel and end-to-end) is finite and
/// strictly positive. Collection rejects non-wholesome traces at the
/// profile boundary and retries them like transient failures.
pub fn trace_is_wholesome(trace: &Trace) -> bool {
    time_is_valid(trace.e2e_seconds)
        && trace
            .layers
            .iter()
            .flat_map(|l| &l.kernels)
            .all(|k| time_is_valid(k.seconds))
}

/// Whether every time in `ds` (network, layer and kernel rows) is finite
/// and positive. Used to re-screen datasets that did not come straight
/// from the profiler (cache hits, external CSVs).
///
/// Layer rows are the one exception to strict positivity: a layer's time
/// is the sum of its kernel times, and layers that launch no kernels
/// (`flatten` view changes) legitimately measure exactly zero. Kernel and
/// network times must still be strictly positive.
pub fn dataset_is_wholesome(ds: &Dataset) -> bool {
    ds.networks
        .iter()
        .all(|r| time_is_valid(r.e2e_seconds) && time_is_valid(r.gpu_seconds))
        && ds
            .layers
            .iter()
            .all(|r| r.seconds.is_finite() && r.seconds >= 0.0)
        && ds.kernels.iter().all(|r| time_is_valid(r.seconds))
}

/// MAD → sigma consistency factor for the Gaussian.
const MAD_SIGMA: f64 = 1.4826;

/// Outlier threshold in robust sigmas.
const MAD_K: f64 = 8.0;

/// Absolute floor on the log-space threshold: a point is only an outlier
/// if it is at least ×8 away from its group median, whatever the spread.
/// This keeps tight clean groups (MAD near zero) from flagging ordinary
/// measurement noise.
fn threshold_floor() -> f64 {
    8f64.ln()
}

fn median_of(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Quarantines experiments containing scale-outlier kernel times, removing
/// all of their rows from `ds`; returns the number of experiments removed.
///
/// Kernel rows are grouped by `(gpu, kernel name, batch, flops, in_elems,
/// out_elems)` — replicate measurements of the *identical* computation on
/// the same hardware, across networks and repeated blocks within a
/// network. Grouping on the full work signature is what makes the screen
/// safe: merely-similar work (same kernel, different layer shape) can
/// legitimately differ by far more than the threshold, but identical work
/// only varies by measurement noise. Within a group, each row is scored in
/// log space as `ln(seconds)`. A row is an outlier when it sits more than
/// `max(8 robust sigmas, ln 8)` from the group median; its whole owning
/// experiment is dropped, mirroring the paper's removal of
/// fail-to-execute experiments.
pub fn quarantine_scale_outliers(ds: &mut Dataset) -> u64 {
    // Group scores by the full work identity: only rows measuring the
    // exact same computation are comparable.
    let mut groups: BTreeMap<WorkKey, Vec<f64>> = BTreeMap::new();
    for r in &ds.kernels {
        groups.entry(work_key(r)).or_default().push(r.seconds.ln());
    }
    let centers: BTreeMap<WorkKey, (f64, f64)> = groups
        .into_iter()
        .filter(|(_, xs)| xs.len() >= 3) // need replicates to judge
        .map(|(k, xs)| {
            let med = median_of(xs.clone());
            let mad = median_of(xs.iter().map(|x| (x - med).abs()).collect());
            let thr = (MAD_K * MAD_SIGMA * mad).max(threshold_floor());
            (k, (med, thr))
        })
        .collect();

    let mut bad: BTreeSet<ExperimentKey> = BTreeSet::new();
    for r in &ds.kernels {
        let Some(&(med, thr)) = centers.get(&work_key(r)) else {
            continue;
        };
        let x = r.seconds.ln();
        if (x - med).abs() > thr {
            bad.insert((r.network.clone(), r.gpu.clone(), r.batch));
        }
    }
    if bad.is_empty() {
        return 0;
    }
    let removed = bad.len() as u64;
    ds.networks
        .retain(|r| !bad.contains(&(r.network.clone(), r.gpu.clone(), r.batch)));
    ds.layers
        .retain(|r| !bad.contains(&(r.network.clone(), r.gpu.clone(), r.batch)));
    ds.kernels
        .retain(|r| !bad.contains(&(r.network.clone(), r.gpu.clone(), r.batch)));
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::collect;
    use dnnperf_dnn::zoo;
    use dnnperf_gpu::GpuSpec;

    fn nets() -> Vec<dnnperf_dnn::Network> {
        (1..6)
            .map(|w| zoo::mobilenet::mobilenet_v2(w as f64 * 0.25, 1.0))
            .collect()
    }

    fn small() -> Dataset {
        collect(&nets(), &[GpuSpec::by_name("A100").unwrap()], &[16, 32])
    }

    #[test]
    fn clean_collections_are_wholesome_and_unquarantined() {
        let mut ds = small();
        assert!(dataset_is_wholesome(&ds));
        let before = ds.clone();
        assert_eq!(quarantine_scale_outliers(&mut ds), 0);
        assert_eq!(ds, before, "clean data must pass through untouched");
    }

    #[test]
    fn invalid_times_fail_wholesomeness() {
        let mut ds = small();
        assert!(dataset_is_wholesome(&ds));
        let orig = ds.kernels[0].seconds;
        for bad in [f64::NAN, f64::INFINITY, -1e-6, 0.0] {
            ds.kernels[0].seconds = bad;
            assert!(!dataset_is_wholesome(&ds), "{bad} accepted");
        }
        ds.kernels[0].seconds = orig;
        assert!(dataset_is_wholesome(&ds));
    }

    #[test]
    fn kernel_free_layers_do_not_fail_wholesomeness() {
        // VGG nets contain a flatten layer that launches no kernels: its
        // layer row measures exactly zero seconds, which is legitimate.
        let mut ds = collect(
            &[zoo::vgg::vgg11()],
            &[GpuSpec::by_name("A100").unwrap()],
            &[8],
        );
        assert!(ds.layers.iter().any(|r| r.seconds == 0.0));
        assert!(dataset_is_wholesome(&ds));
        // But a *negative* or non-finite layer time is still damage.
        ds.layers[0].seconds = -1e-9;
        assert!(!dataset_is_wholesome(&ds));
        ds.layers[0].seconds = f64::NAN;
        assert!(!dataset_is_wholesome(&ds));
    }

    /// Index of a kernel row that belongs to an identical-work group with
    /// at least three replicates (so the screen is allowed to judge it).
    fn judged_row(ds: &Dataset) -> usize {
        let mut counts: BTreeMap<WorkKey, usize> = BTreeMap::new();
        for r in &ds.kernels {
            *counts.entry(work_key(r)).or_default() += 1;
        }
        ds.kernels
            .iter()
            .position(|r| counts[&work_key(r)] >= 3)
            .expect("dataset must contain a replicated identical-work group")
    }

    #[test]
    fn scale_outlier_quarantines_its_whole_experiment() {
        let mut ds = small();
        let idx = judged_row(&ds);
        let victim = (
            ds.kernels[idx].network.clone(),
            ds.kernels[idx].gpu.clone(),
            ds.kernels[idx].batch,
        );
        ds.kernels[idx].seconds *= 40.0;
        let n_before = ds.networks.len();
        let removed = quarantine_scale_outliers(&mut ds);
        assert_eq!(removed, 1);
        assert_eq!(ds.networks.len(), n_before - 1);
        assert!(
            !ds.kernels
                .iter()
                .any(|r| (r.network.clone(), r.gpu.clone(), r.batch) == victim),
            "all rows of the poisoned experiment must go"
        );
        // The survivors are untouched and still wholesome.
        assert!(dataset_is_wholesome(&ds));
    }

    #[test]
    fn downscale_outliers_are_caught_too() {
        let mut ds = small();
        let idx = judged_row(&ds);
        ds.kernels[idx].seconds *= 0.025;
        assert_eq!(quarantine_scale_outliers(&mut ds), 1);
    }

    #[test]
    fn small_groups_are_never_judged() {
        // A dataset with a single experiment has no replicates: even a
        // wild time cannot be judged an outlier.
        let mut ds = collect(
            &[zoo::resnet::resnet18()],
            &[GpuSpec::by_name("V100").unwrap()],
            &[8],
        );
        // Most groups have < 3 members here (one network, one batch), so
        // scaling a single kernel should usually survive; assert only that
        // quarantine never removes more experiments than exist and stays
        // deterministic.
        let removed = quarantine_scale_outliers(&mut ds);
        assert!(removed <= 1);
    }

    #[test]
    fn wholesome_trace_screen_matches_row_screen() {
        let p = dnnperf_gpu::Profiler::new(GpuSpec::by_name("A100").unwrap());
        let t = p.profile(&zoo::resnet::resnet18(), 8).unwrap();
        assert!(trace_is_wholesome(&t));
        let mut bad = t.clone();
        bad.layers[0].kernels[0].seconds = f64::NAN;
        assert!(!trace_is_wholesome(&bad));
        let mut bad2 = t.clone();
        bad2.e2e_seconds = -1.0;
        assert!(!trace_is_wholesome(&bad2));
    }
}
