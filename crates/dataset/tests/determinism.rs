//! Byte-level determinism of parallel dataset collection.
//!
//! `collect_parallel` must produce a dataset *identical* to the serial
//! `collect` — not just equal row multisets, but the same rows in the same
//! order, so the serialized CSVs are byte-for-byte reproducible regardless
//! of worker count. This is what makes the collected dataset a stable
//! artifact: re-running collection on a machine with a different core count
//! must not change a single byte of the published CSVs.

use dnnperf_data::collect::{collect, collect_parallel};
use dnnperf_data::csv::write_dataset;
use dnnperf_dnn::zoo;
use dnnperf_gpu::GpuSpec;
use std::path::Path;

/// Reads the three CSV files a dataset serializes to.
fn csv_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    ["networks.csv", "layers.csv", "kernels.csv"]
        .iter()
        .map(|name| {
            let bytes = std::fs::read(dir.join(name)).expect("dataset file must exist");
            (name.to_string(), bytes)
        })
        .collect()
}

#[test]
fn parallel_collection_is_byte_identical_to_serial() {
    // Five networks so that threads = 8 exceeds the network count (some
    // workers receive empty or single-network chunks).
    let nets = [
        zoo::resnet::resnet18(),
        zoo::vgg::vgg11(),
        zoo::mobilenet::mobilenet_v2(0.5, 1.0),
        zoo::squeezenet::squeezenet(128, 128, 0.125),
        zoo::mobilenet::mobilenet_v2(1.0, 1.0),
    ];
    let gpus = [
        GpuSpec::by_name("A100").unwrap(),
        GpuSpec::by_name("V100").unwrap(),
    ];
    let batches = [8, 16];

    let base = std::env::temp_dir().join(format!("dnnperf_determinism_{}", std::process::id()));
    let serial_dir = base.join("serial");
    std::fs::create_dir_all(&serial_dir).unwrap();
    let serial = collect(&nets, &gpus, &batches);
    write_dataset(&serial, &serial_dir).unwrap();
    let want = csv_bytes(&serial_dir);
    assert!(
        want.iter().all(|(_, b)| !b.is_empty()),
        "serial collection must produce non-empty CSVs"
    );

    for threads in [1usize, 3, 8] {
        let parallel = collect_parallel(&nets, &gpus, &batches, threads);
        assert_eq!(
            serial, parallel,
            "structural mismatch at threads = {threads}"
        );
        let dir = base.join(format!("threads_{threads}"));
        std::fs::create_dir_all(&dir).unwrap();
        write_dataset(&parallel, &dir).unwrap();
        let got = csv_bytes(&dir);
        for ((name, w), (_, g)) in want.iter().zip(&got) {
            assert!(
                w == g,
                "{name} differs between serial and threads = {threads} \
                 ({} vs {} bytes)",
                w.len(),
                g.len()
            );
        }
    }

    std::fs::remove_dir_all(&base).ok();
}
