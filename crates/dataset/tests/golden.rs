//! Golden-file test for the dataset CSV format.
//!
//! The CSV files are the repo's interchange format (and the backbone of
//! the cache container): their byte-level layout must not drift silently.
//! A pinned in-memory dataset — with deliberately awkward floating-point
//! values — is written out and compared byte-for-byte against checked-in
//! golden files, then re-parsed and compared for exact equality.
//!
//! To regenerate the golden files after an *intentional* format change:
//!
//! ```text
//! DNNPERF_UPDATE_GOLDEN=1 cargo test -p dnnperf-data --test golden
//! ```
//!
//! and commit the updated files under `tests/golden/`.

use dnnperf_data::csv::{read_dataset, write_dataset};
use dnnperf_data::{Dataset, KernelRow, LayerRow, NetworkRow};
use std::path::{Path, PathBuf};

/// The pinned dataset. Every f64 here is chosen to stress the shortest
/// round-trip `Display` formatting the writers rely on: values needing 17
/// significant digits, classic binary-unrepresentable decimals, and
/// extreme-but-normal magnitudes.
fn pinned_dataset() -> Dataset {
    Dataset {
        networks: vec![
            NetworkRow {
                network: "GoldenNet-1".into(),
                family: "golden".into(),
                gpu: "A100".into(),
                batch: 512,
                flops: u64::MAX,
                bytes: 1,
                e2e_seconds: 0.1 + 0.2, // 0.30000000000000004
                gpu_seconds: 1.0 / 3.0,
                kernel_count: 3,
            },
            NetworkRow {
                network: "GoldenNet-2".into(),
                family: "golden".into(),
                gpu: "GTX 1080 Ti".into(),
                batch: 1,
                flops: 0,
                bytes: u64::MAX,
                e2e_seconds: 1e-9,
                gpu_seconds: 12345.678901234567,
                kernel_count: 0,
            },
        ],
        layers: vec![LayerRow {
            network: "GoldenNet-1".into(),
            gpu: "A100".into(),
            batch: 512,
            layer_index: 0,
            layer_type: "conv".into(),
            flops: 1 << 40,
            in_elems: 7,
            out_elems: 11,
            seconds: 2.0_f64.powi(-30),
        }],
        kernels: vec![
            KernelRow {
                network: "GoldenNet-1".into(),
                gpu: "A100".into(),
                batch: 512,
                layer_index: 0,
                layer_type: "conv".into(),
                kernel: "implicit_gemm_128x64[tf32]".into(),
                in_elems: 7,
                flops: 1 << 40,
                out_elems: 11,
                seconds: 0.1,
            },
            KernelRow {
                network: "GoldenNet-1".into(),
                gpu: "A100".into(),
                batch: 512,
                layer_index: 0,
                layer_type: "conv".into(),
                kernel: "splitK_reduce".into(),
                in_elems: 7,
                flops: 1 << 40,
                out_elems: 11,
                seconds: 1e-6 / 3.0, // 17 significant digits to round-trip
            },
            KernelRow {
                network: "GoldenNet-2".into(),
                gpu: "GTX 1080 Ti".into(),
                batch: 1,
                layer_index: 3,
                layer_type: "fc".into(),
                kernel: "sgemm_32x32".into(),
                in_elems: u64::MAX,
                flops: 2,
                out_elems: 1000,
                seconds: 4503599627370497.0, // 2^52 + 1: max exact integer range
            },
        ],
    }
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

const FILES: [&str; 3] = ["networks.csv", "layers.csv", "kernels.csv"];

#[test]
fn csv_output_matches_golden_files_byte_for_byte() {
    let ds = pinned_dataset();
    let out = std::env::temp_dir().join(format!("dnnperf_golden_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    write_dataset(&ds, &out).expect("write dataset");

    let golden = golden_dir();
    if std::env::var_os("DNNPERF_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(&golden).expect("create golden dir");
        for f in FILES {
            std::fs::copy(out.join(f), golden.join(f)).expect("update golden file");
        }
        let _ = std::fs::remove_dir_all(&out);
        return;
    }

    for f in FILES {
        let written = std::fs::read(out.join(f)).expect("written CSV");
        let expected = std::fs::read(golden.join(f)).unwrap_or_else(|e| {
            panic!("missing golden file {f} ({e}); run with DNNPERF_UPDATE_GOLDEN=1 to create")
        });
        assert_eq!(
            written, expected,
            "{f} drifted from tests/golden/{f}; if the format change is \
             intentional, regenerate with DNNPERF_UPDATE_GOLDEN=1"
        );
    }
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn golden_files_parse_back_to_the_pinned_dataset() {
    // Exact equality: the shortest-representation Display formatting must
    // survive a full write -> parse cycle for every row and every f64.
    let parsed = read_dataset(&golden_dir()).expect("parse golden files");
    assert_eq!(parsed, pinned_dataset());
}
