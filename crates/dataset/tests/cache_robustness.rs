//! Robustness of the on-disk dataset cache.
//!
//! A cache entry is untrusted input: it may be truncated by a crashed
//! writer, corrupted by bit rot, or written by an older format version.
//! Every such entry must read as a miss — never a panic, never a wrong
//! dataset — and the engine must fall back to recollection and repair the
//! entry. Concurrent writers racing on one key must always leave a single
//! valid entry behind (atomic temp-file + rename).

use dnnperf_data::cache::{dataset_key, CollectMode};
use dnnperf_data::collect::{collect, collect_opts};
use dnnperf_data::{CollectOptions, DatasetCache};
use dnnperf_dnn::{zoo, Network};
use dnnperf_gpu::{GpuSpec, TimingModel};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn nets() -> Vec<Network> {
    vec![
        zoo::mobilenet::mobilenet_v2(0.25, 1.0),
        zoo::squeezenet::squeezenet(64, 32, 0.125),
    ]
}

fn gpu() -> GpuSpec {
    GpuSpec::by_name("A100").unwrap()
}

/// A fresh scratch cache directory per test (std-only).
fn fresh_dir(tag: &str) -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dnnperf_cache_robust_{tag}_{}_{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Seeds a cache directory with one valid entry and returns
/// `(cache, key, entry bytes)`.
fn seeded(tag: &str) -> (DatasetCache, u64, Vec<u8>) {
    let dir = fresh_dir(tag);
    let nets = nets();
    let gpus = [gpu()];
    let opts = CollectOptions::serial().cached_at(&dir);
    let (_, stats) = collect_opts(&nets, &gpus, &[2], &opts);
    assert_eq!(stats.misses, 1);
    let cache = DatasetCache::new(&dir);
    let key = dataset_key(
        &nets,
        &gpus,
        &[2],
        TimingModel::new().seed(),
        CollectMode::Inference,
    );
    let bytes = std::fs::read(cache.entry_path(key)).unwrap();
    assert!(cache.load(key).is_some(), "seed entry must be valid");
    (cache, key, bytes)
}

#[test]
fn truncated_entries_read_as_misses() {
    let (cache, key, bytes) = seeded("trunc");
    // Chop the file at several points: mid-header, mid-table, and just
    // before the trailing `end` marker (a whole-table truncation that only
    // the marker can catch).
    for keep in [0, 1, 10, bytes.len() / 2, bytes.len() - 5] {
        std::fs::write(cache.entry_path(key), &bytes[..keep]).unwrap();
        assert!(
            cache.load(key).is_none(),
            "entry truncated to {keep} bytes must be a miss"
        );
    }
}

#[test]
fn corrupted_entries_read_as_misses() {
    let (cache, key, bytes) = seeded("corrupt");
    // Flip a byte in the middle of the numeric payload.
    let mut garbled = bytes.clone();
    let mid = garbled.len() / 2;
    garbled[mid] = b'#';
    std::fs::write(cache.entry_path(key), &garbled).unwrap();
    assert!(cache.load(key).is_none(), "garbled entry must be a miss");

    // Pure garbage.
    std::fs::write(cache.entry_path(key), b"not a cache file at all\n").unwrap();
    assert!(cache.load(key).is_none(), "garbage entry must be a miss");

    // Non-UTF-8 bytes must not panic the line reader.
    std::fs::write(cache.entry_path(key), [0xFFu8, 0xFE, 0x00, 0x01]).unwrap();
    assert!(cache.load(key).is_none(), "binary junk must be a miss");
}

#[test]
fn wrong_version_reads_as_miss() {
    let (cache, key, bytes) = seeded("version");
    let text = String::from_utf8(bytes).unwrap();
    let (magic, rest) = text.split_once('\n').unwrap();
    assert!(magic.contains("v1"), "test assumes a v1 magic line");
    let stale = format!("{}\n{rest}", magic.replace("v1", "v0"));
    std::fs::write(cache.entry_path(key), stale).unwrap();
    assert!(
        cache.load(key).is_none(),
        "old-version entry must be a miss"
    );
}

#[test]
fn key_mismatch_reads_as_miss() {
    let (cache, key, bytes) = seeded("rename");
    // A valid entry copied under a different key (e.g. a mangled file
    // rename) must fail the self-describing key check.
    let other = key ^ 1;
    std::fs::write(cache.entry_path(other), &bytes).unwrap();
    assert!(cache.load(other).is_none(), "foreign entry must be a miss");
    // The original is untouched and still loads.
    assert!(cache.load(key).is_some());
}

#[test]
fn engine_recollects_and_repairs_corrupt_entries() {
    let (cache, key, bytes) = seeded("repair");
    let nets = nets();
    let gpus = [gpu()];
    let opts = CollectOptions::serial().cached_at(cache.dir());
    let reference = collect(&nets, &gpus, &[2]);

    // Corrupt the entry, then collect through the engine: it must fall
    // back to profiling (a miss, not a panic), return the right dataset,
    // and rewrite the entry in passing.
    std::fs::write(cache.entry_path(key), &bytes[..bytes.len() / 3]).unwrap();
    let (ds, stats) = collect_opts(&nets, &gpus, &[2], &opts);
    assert_eq!((stats.hits, stats.misses), (0, 1));
    assert_eq!(
        stats.corrupt, 1,
        "a damaged entry must be surfaced as corrupt, not a silent miss"
    );
    assert!(stats.bytes_written > 0);
    assert_eq!(ds, reference);

    // The repaired entry is a clean hit again.
    let (ds, stats) = collect_opts(&nets, &gpus, &[2], &opts);
    assert_eq!((stats.hits, stats.misses, stats.corrupt), (1, 0, 0));
    assert_eq!(ds, reference);
}

#[test]
fn unwritable_cache_does_not_fail_collection() {
    // Point the cache at a path that cannot be a directory (it's a file):
    // store fails, but collection must still succeed with the right data.
    let dir = fresh_dir("unwritable");
    std::fs::create_dir_all(dir.parent().unwrap()).unwrap();
    std::fs::write(&dir, b"occupied").unwrap();
    let nets = nets();
    let gpus = [gpu()];
    let opts = CollectOptions::serial().cached_at(&dir);
    let (ds, stats) = collect_opts(&nets, &gpus, &[2], &opts);
    assert_eq!((stats.hits, stats.misses, stats.bytes_written), (0, 1, 0));
    assert_eq!(ds, collect(&nets, &gpus, &[2]));
    let _ = std::fs::remove_file(&dir);
}

#[test]
fn concurrent_writers_leave_one_valid_entry() {
    let dir = fresh_dir("race");
    let cache = DatasetCache::new(&dir);
    let nets = nets();
    let gpus = [gpu()];
    let ds = collect(&nets, &gpus, &[2]);
    let key = dataset_key(
        &nets,
        &gpus,
        &[2],
        TimingModel::new().seed(),
        CollectMode::Inference,
    );

    // Many threads race to store the same key; each writes its own
    // complete temp file and renames it over the entry.
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..4 {
                    cache.store(key, &ds).expect("store");
                }
            });
        }
    });

    // Whoever won, the surviving entry is complete and loads the dataset.
    let (loaded, _) = cache.load(key).expect("entry must be valid after race");
    assert_eq!(loaded, ds);
    // No temp litter left behind.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn racing_collectors_agree_via_cache() {
    // Two engine invocations race on a cold cache: both must return the
    // same (correct) dataset regardless of who wins the store.
    let dir = fresh_dir("collector_race");
    let nets = nets();
    let gpus = [gpu()];
    let opts = CollectOptions::with_threads(2).cached_at(&dir);
    let reference = collect(&nets, &gpus, &[2]);
    let results: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| s.spawn(|| collect_opts(&nets, &gpus, &[2], &opts).0))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for ds in results {
        assert_eq!(ds, reference);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
