//! Property-based tests for dataset splitting and CSV serialization.

use dnnperf_data::csv::{read_dataset, write_dataset};
use dnnperf_data::{split_names, Dataset, KernelRow, LayerRow, NetworkRow};
use dnnperf_testkit::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

fn ident() -> impl Gen<Value = String> {
    string_class("A-Za-z0-9_.\\[\\]-", 1..=24)
}

fn arb_network_row() -> impl Gen<Value = NetworkRow> {
    (
        ident(),
        ident(),
        ident(),
        1u32..1024,
        1u64..1 << 40,
        1u64..1 << 40,
        1e-6..10.0f64,
    )
        .prop_map(
            |(network, family, gpu, batch, flops, bytes, t)| NetworkRow {
                network: Arc::from(network.as_str()),
                family: Arc::from(family.as_str()),
                gpu: Arc::from(gpu.as_str()),
                batch,
                flops,
                bytes,
                e2e_seconds: t,
                gpu_seconds: t * 0.9,
                kernel_count: 3,
            },
        )
}

fn arb_kernel_row() -> impl Gen<Value = KernelRow> {
    (
        ident(),
        ident(),
        ident(),
        1u32..1024,
        0u32..500,
        1u64..1 << 40,
        1e-9..1.0f64,
    )
        .prop_map(|(network, gpu, kernel, batch, li, x, t)| KernelRow {
            network: Arc::from(network.as_str()),
            gpu: Arc::from(gpu.as_str()),
            batch,
            layer_index: li,
            layer_type: Arc::from("conv"),
            kernel: Arc::from(kernel.as_str()),
            in_elems: x,
            flops: x * 2,
            out_elems: x / 2 + 1,
            seconds: t,
        })
}

props! {
    #[test]
    fn split_is_always_a_partition(n in 0usize..200, frac in 0.0..1.0f64, seed in 0u64..1000) {
        let names: Vec<String> = (0..n).map(|i| format!("net{i}")).collect();
        let (train, test) = split_names(&names, frac, seed);
        prop_assert_eq!(train.len() + test.len(), n);
        let union: HashSet<&String> = train.iter().chain(&test).collect();
        prop_assert_eq!(union.len(), n);
        let expected_test = (n as f64 * frac).round() as usize;
        prop_assert_eq!(test.len(), expected_test.min(n));
    }

    #[test]
    fn csv_round_trip_is_lossless(
        nets in vec(arb_network_row(), 0..20),
        kernels in vec(arb_kernel_row(), 0..50),
    ) {
        let ds = Dataset { networks: nets, layers: Vec::new(), kernels };
        let dir = std::env::temp_dir().join(format!(
            "dnnperf_props_csv_{}_{}",
            std::process::id(),
            ds.networks.len() * 1000 + ds.kernels.len()
        ));
        write_dataset(&ds, &dir).unwrap();
        let back = read_dataset(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(ds, back);
    }

    #[test]
    fn layer_rows_survive_round_trip(batch in 1u32..2048, flops in 0u64..1 << 50, t in 1e-9..100.0f64) {
        let row = LayerRow {
            network: "n".into(),
            gpu: "g".into(),
            batch,
            layer_index: 7,
            layer_type: Arc::from("fc"),
            flops,
            in_elems: flops / 3 + 1,
            out_elems: flops / 7 + 1,
            seconds: t,
        };
        let ds = Dataset { networks: vec![], layers: vec![row], kernels: vec![] };
        let dir = std::env::temp_dir().join(format!("dnnperf_props_layer_{}_{batch}", std::process::id()));
        write_dataset(&ds, &dir).unwrap();
        let back = read_dataset(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(ds.layers, back.layers);
    }

    #[test]
    fn garbage_csv_files_error_cleanly(
        junk in vec(string_class(" -~", 0..=80), 0..20),
        which in 0usize..3,
    ) {
        // Random printable junk must produce a parse/IO error, never a panic
        // and never a silently-parsed dataset (unless the junk happens to be
        // empty-but-headered, which the generator cannot produce).
        let dir = std::env::temp_dir().join(format!(
            "dnnperf_props_fuzz_{}_{}_{}",
            std::process::id(),
            which,
            junk.len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let names = ["networks.csv", "layers.csv", "kernels.csv"];
        let headers = [
            "network,family,gpu,batch,flops,bytes,e2e_seconds,gpu_seconds,kernel_count",
            "network,gpu,batch,layer_index,layer_type,flops,in_elems,out_elems,seconds",
            "network,gpu,batch,layer_index,layer_type,kernel,in_elems,flops,out_elems,seconds",
        ];
        for (i, (name, header)) in names.iter().zip(headers).enumerate() {
            if i == which {
                std::fs::write(dir.join(name), junk.join("\n")).unwrap();
            } else {
                std::fs::write(dir.join(name), format!("{header}\n")).unwrap();
            }
        }
        let result = std::panic::catch_unwind(|| read_dataset(&dir));
        std::fs::remove_dir_all(&dir).ok();
        let outcome = result.expect("read_dataset must not panic on junk");
        // The junk file either fails to parse, or (astronomically unlikely
        // with this generator) happened to be a valid file.
        if let Ok(ds) = outcome {
            prop_assert!(ds.networks.len() + ds.layers.len() + ds.kernels.len() < junk.len().max(1));
        }
    }

    #[test]
    fn dedup_is_idempotent(kernels in vec(arb_kernel_row(), 0..40)) {
        let mut ds = Dataset { networks: vec![], layers: vec![], kernels };
        ds.dedup();
        let once = ds.clone();
        ds.dedup();
        prop_assert_eq!(once, ds);
    }
}
