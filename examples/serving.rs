//! Boots the multi-tenant prediction server on an ephemeral TCP port and
//! serves the full CNN zoo until stdin closes.
//!
//! ```sh
//! cargo run --release --example serving
//! ```
//!
//! Prints the bound address plus a reference prediction (as f64 bits) so
//! any client — the protocol is plain length-prefixed TCP, speakable from
//! any language — can check it decodes the exact same double.

use dnnperf::data::collect::collect;
use dnnperf::dnn::zoo;
use dnnperf::gpu::GpuSpec;
use dnnperf::model::Workflow;
use dnnperf::serve::{PredictionServer, ServerConfig, TcpServer};
use std::io::Read;
use std::sync::Arc;

fn main() {
    let gpu = GpuSpec::by_name("A100").expect("A100 spec");
    let nets = [
        zoo::resnet::resnet18(),
        zoo::resnet::resnet50(),
        zoo::vgg::vgg11(),
        zoo::mobilenet::mobilenet_v2(1.0, 1.0),
    ];
    let ds = collect(&nets, std::slice::from_ref(&gpu), &[8, 32]);
    let suite = Arc::new(Workflow::train(&ds, "A100").expect("train"));

    let reference = zoo::resnet::resnet50();
    let direct = suite.predict(&reference, 32).expect("predict");

    let server = Arc::new(PredictionServer::start(&ServerConfig::default()));
    server.register_tenant("demo", Arc::clone(&suite));
    server.add_networks(zoo::cnn_zoo());
    let tcp = TcpServer::serve(Arc::clone(&server), "127.0.0.1:0").expect("bind");

    println!("addr {}", tcp.addr());
    println!(
        "direct ResNet-50@32 bits {:016x} ({direct:.6e} s)",
        direct.to_bits()
    );
    println!(
        "serving the {}-network zoo for tenant \"demo\"; close stdin to stop",
        server.catalog_len()
    );

    // Park until the driving process closes our stdin.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);

    tcp.shutdown();
    server.shutdown();
    let stats = server.stats();
    println!(
        "done: {} admitted, {} completed, {} shed",
        stats.admitted, stats.completed, stats.shed
    );
}
