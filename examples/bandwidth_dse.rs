//! Case Study 1: design-space exploration of a hypothetical GPU's memory
//! bandwidth (paper Figures 15/16).
//!
//! An operator ordering custom silicon wants to know how much memory
//! bandwidth their DNN workload actually needs. The Inter-GPU Kernel-Wise
//! model answers in microseconds per configuration — no hardware, no
//! simulator.
//!
//! ```sh
//! cargo run --release --example bandwidth_dse
//! ```

use dnnperf::data::collect::collect;
use dnnperf::dnn::zoo;
use dnnperf::gpu::GpuSpec;
use dnnperf::model::IgkwModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train the inter-GPU model on a few diverse real GPUs.
    let train_gpus: Vec<GpuSpec> = ["A100", "A40", "GTX 1080 Ti", "V100"]
        .iter()
        .map(|n| GpuSpec::by_name(n).expect("Table 1 GPU"))
        .collect();
    let nets: Vec<_> = dnnperf::dnn::zoo::cnn_zoo()
        .into_iter()
        .step_by(6)
        .collect();
    println!(
        "measuring {} networks on {} GPUs ...",
        nets.len(),
        train_gpus.len()
    );
    let dataset = collect(&nets, &train_gpus, &[128]);
    let model = IgkwModel::train(&dataset, &train_gpus)?;

    // Sweep a modified TITAN RTX for two workloads with different
    // bandwidth appetites.
    let titan = GpuSpec::by_name("TITAN RTX").unwrap();
    let workloads = [zoo::resnet::resnet50(), zoo::densenet::densenet169()];
    println!("\npredicted batch-128 time on TITAN RTX variants:");
    println!(
        "{:>10} | {:>12} | {:>12}",
        "GB/s",
        workloads[0].name(),
        workloads[1].name()
    );
    for bw in (200..=1400).step_by(200) {
        let g = titan.with_bandwidth(bw as f64);
        let t0 = model.predict_network_on(&workloads[0], 128, &g)?;
        let t1 = model.predict_network_on(&workloads[1], 128, &g)?;
        let native = if (672 - bw as i64).abs() < 100 {
            "  <- ~native"
        } else {
            ""
        };
        println!(
            "{bw:>10} | {:>9.1} ms | {:>9.1} ms{native}",
            t0 * 1e3,
            t1 * 1e3
        );
    }
    println!("\neach prediction costs microseconds; a simulator would need hours per point");
    Ok(())
}
