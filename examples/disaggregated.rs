//! Case Study 2: sizing the network link of a memory-disaggregated GPU
//! system (paper Figure 17).
//!
//! A GPU with small local memory streams its layer parameters from a
//! remote memory pool. The KW model supplies per-layer compute times; a
//! small event-driven simulation overlaps prefetch with compute and reports
//! how fast the link must be to keep the GPU busy.
//!
//! ```sh
//! cargo run --release --example disaggregated
//! ```

use dnnperf::data::collect::collect;
use dnnperf::dnn::zoo;
use dnnperf::gpu::GpuSpec;
use dnnperf::model::KwModel;
use dnnperf::simkit::{disagg::layer_work_from_model, simulate_disaggregated, DisaggConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu = GpuSpec::by_name("A100").unwrap();
    let nets: Vec<_> = dnnperf::dnn::zoo::cnn_zoo()
        .into_iter()
        .step_by(6)
        .collect();
    println!("training the KW model on {} networks ...", nets.len());
    let dataset = collect(&nets, std::slice::from_ref(&gpu), &[4]);
    let kw = KwModel::train(&dataset, &gpu.name)?;

    let workload = zoo::resnet::resnet50();
    let work = layer_work_from_model(&kw, &workload, 1);
    let params_mb: f64 = work.iter().map(|w| w.param_bytes as f64).sum::<f64>() / 1e6;
    let compute_ms: f64 = work.iter().map(|w| w.compute_seconds).sum::<f64>() * 1e3;
    println!(
        "\n{}: {:.0} MB of parameters to stream, {:.2} ms of predicted compute per image",
        workload.name(),
        params_mb,
        compute_ms
    );

    println!(
        "\n{:>10} | {:>10} | {:>11} | {:>11}",
        "link GB/s", "total", "GPU stalled", "utilization"
    );
    for bw in [8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0] {
        let r = simulate_disaggregated(
            &work,
            DisaggConfig {
                link_bandwidth_gbps: bw,
                lookahead: 2,
            },
        );
        println!(
            "{bw:>10} | {:>7.2} ms | {:>8.2} ms | {:>10.0}%",
            r.total_seconds * 1e3,
            r.stall_seconds * 1e3,
            r.utilization() * 100.0
        );
    }
    println!("\npick the smallest link that keeps utilization near 100%");
    Ok(())
}
