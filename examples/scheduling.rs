//! Case Study 3: real-time task scheduling across heterogeneous GPUs
//! (paper Figures 18/19).
//!
//! A machine-learning-as-a-service operator owns an A40 and a TITAN RTX.
//! The KW models predict every job's time on both GPUs; predictions are
//! cheap enough to brute-force the assignment that minimizes the overall
//! completion time.
//!
//! ```sh
//! cargo run --release --example scheduling
//! ```

use dnnperf::data::collect::collect;
use dnnperf::dnn::zoo;
use dnnperf::gpu::{GpuSpec, Profiler};
use dnnperf::model::{KwModel, Predictor};
use dnnperf::sched::{best_gpu, brute_force_schedule, evaluate_makespan, JobTimes};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpus = [
        GpuSpec::by_name("A40").unwrap(),
        GpuSpec::by_name("TITAN RTX").unwrap(),
    ];
    let batch = 128;

    let training: Vec<_> = dnnperf::dnn::zoo::cnn_zoo()
        .into_iter()
        .step_by(6)
        .collect();
    println!(
        "training one KW model per GPU ({} training networks) ...",
        training.len()
    );
    let dataset = collect(&training, &gpus, &[batch]);
    let models: Vec<KwModel> = gpus
        .iter()
        .map(|g| KwModel::train(&dataset, &g.name))
        .collect::<Result<_, _>>()?;

    // The incoming job queue.
    let queue = [
        zoo::resnet::resnet50(),
        zoo::resnet::resnet77(),
        zoo::densenet::densenet121(),
        zoo::densenet::densenet169(),
        zoo::shufflenet::shufflenet_v1(3, 1.0, &[4, 8, 4]),
        zoo::vgg::vgg16(),
    ];
    let jobs: Vec<JobTimes> = queue
        .iter()
        .map(|n| {
            Ok(JobTimes {
                name: n.name().to_string(),
                per_gpu: models
                    .iter()
                    .map(|m| m.predict_network(n, batch))
                    .collect::<Result<_, _>>()?,
            })
        })
        .collect::<Result<_, dnnperf::model::PredictError>>()?;

    println!("\nper-job routing (fastest predicted GPU):");
    for job in &jobs {
        let g = best_gpu(&job.per_gpu);
        println!(
            "  {:<14} -> {:<9} ({:.1} ms predicted)",
            job.name,
            gpus[g].name,
            job.per_gpu[g] * 1e3
        );
    }

    let schedule = brute_force_schedule(&jobs);
    println!(
        "\nqueue schedule minimizing makespan (predicted): {:.1} ms",
        schedule.makespan * 1e3
    );
    for (job, &g) in jobs.iter().zip(&schedule.assignment) {
        println!("  {:<14} on {}", job.name, gpus[g].name);
    }

    // Validate against ground-truth measurements.
    let actual: Vec<JobTimes> = queue
        .iter()
        .map(|n| JobTimes {
            name: n.name().to_string(),
            per_gpu: gpus
                .iter()
                .map(|g| {
                    Profiler::new(g.clone())
                        .profile(n, batch)
                        .expect("fits")
                        .e2e_seconds
                })
                .collect(),
        })
        .collect();
    let achieved = evaluate_makespan(&actual, &schedule.assignment);
    let oracle = brute_force_schedule(&actual).makespan;
    println!(
        "\nachieved makespan {:.1} ms vs oracle {:.1} ms ({:+.1}% gap)",
        achieved * 1e3,
        oracle * 1e3,
        (achieved / oracle - 1.0) * 100.0
    );
    Ok(())
}
