//! Quickstart: collect measurements, train all three single-GPU models,
//! and predict a network none of them has seen.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dnnperf::data::collect::collect;
use dnnperf::dnn::zoo;
use dnnperf::gpu::{GpuSpec, Profiler};
use dnnperf::model::Workflow;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu = GpuSpec::by_name("A100").expect("A100 is in the Table 1 catalogue");
    let batch = 64;

    // 1. Measure a small training zoo (the paper uses 646 networks; a
    //    handful is enough to see the workflow).
    let training_nets = [
        zoo::resnet::resnet18(),
        zoo::resnet::resnet34(),
        zoo::resnet::resnet50(),
        zoo::resnet::resnet101(),
        zoo::vgg::vgg11(),
        zoo::vgg::vgg16(),
        zoo::densenet::densenet121(),
        zoo::mobilenet::mobilenet_v2(1.0, 1.0),
    ];
    println!(
        "collecting measurements for {} networks on {} ...",
        training_nets.len(),
        gpu.name
    );
    let dataset = collect(&training_nets, std::slice::from_ref(&gpu), &[batch]);
    println!(
        "  {} kernel measurements, {} distinct kernels",
        dataset.kernels.len(),
        dataset.distinct_kernels()
    );

    // 2. Train the E2E, Layer-Wise and Kernel-Wise models (Figure 10).
    let suite = Workflow::train(&dataset, &gpu.name)?;
    println!(
        "trained KW model: {} kernels -> {} regressions",
        suite.kw.num_kernels(),
        suite.kw.num_models()
    );

    // 3. Predict a network the models never saw, and compare with a real
    //    measurement.
    let unseen = zoo::resnet::resnet77();
    let measured = Profiler::new(gpu).profile(&unseen, batch)?.e2e_seconds;
    println!("\npredicting {} at batch {batch}:", unseen.name());
    println!("  measured      : {:8.3} ms", measured * 1e3);
    for model in suite.models() {
        let predicted = model.predict_network(&unseen, batch)?;
        println!(
            "  {:<4} predicted: {:8.3} ms  (error {:+.1}%)",
            model.name(),
            predicted * 1e3,
            (predicted / measured - 1.0) * 100.0
        );
    }
    Ok(())
}
