#!/usr/bin/env bash
# Offline CI for the dnnperf workspace.
#
# The workspace is hermetic: it builds, tests and lints with no crates.io
# dependencies and no network access (CARGO_NET_OFFLINE pins that down —
# any accidental external dependency fails resolution immediately instead
# of silently fetching).

set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> tier-1: build (release)"
cargo build --release --offline --workspace

echo "==> tier-1: test"
cargo test -q --offline --workspace

echo "==> determinism conformance (forced multi-threading, tmpdir cache)"
# The conformance suite must pass with test-level parallelism forced >1 and
# a warm-capable cache directory exported, so the engine's work-stealing and
# cache-hit paths are exercised under contention (not just the defaults).
DNNPERF_CACHE_DIR="$(mktemp -d)" \
    cargo test -q --offline -p dnnperf --test determinism -- --test-threads 4

echo "==> fault-injection conformance (forced multi-threading)"
# The resilience contract — fault-injected collection byte-identical to
# fault-free, panic isolation, quarantine — must hold under test-level
# parallelism, not just the serial default.
cargo test -q --offline -p dnnperf --test fault_injection -- --test-threads 4

echo "==> experiment binaries still build"
cargo build --offline -p dnnperf-bench --bins

echo "==> rustfmt"
cargo fmt --all -- --check

echo "==> clippy (warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> clippy: no unwrap/expect in resilience-critical crates"
# The collection engine and the scheduler pool promise panic isolation; a
# stray unwrap in their non-test code would turn a recoverable fault into
# a crashed worker. The deny lives as a crate attribute (so plain clippy
# enforces it); this step pins the attribute in place and re-lints the
# two lib targets explicitly. (Tests may unwrap freely: cfg_attr(not(test)).)
for crate in crates/scheduler crates/dataset; do
    if ! grep -q 'deny(clippy::unwrap_used, clippy::expect_used)' "$crate/src/lib.rs"; then
        echo "error: $crate/src/lib.rs lost its unwrap/expect deny attribute" >&2
        exit 1
    fi
done
cargo clippy --offline -p dnnperf-sched -p dnnperf-data --lib -- -D warnings

echo "==> hermetic-dependency check"
if grep -En '^[^#]*\b(rand|crossbeam|proptest|criterion)\b' Cargo.toml crates/*/Cargo.toml; then
    echo "error: external dependency reference found in a manifest" >&2
    exit 1
fi

echo "CI passed."
