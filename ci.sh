#!/usr/bin/env bash
# Offline CI for the dnnperf workspace.
#
# The workspace is hermetic: it builds, tests and lints with no crates.io
# dependencies and no network access (CARGO_NET_OFFLINE pins that down —
# any accidental external dependency fails resolution immediately instead
# of silently fetching).

set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> tier-1: build (release)"
cargo build --release --offline --workspace

echo "==> tier-1: test"
cargo test -q --offline --workspace

echo "==> determinism conformance (forced multi-threading, tmpdir cache)"
# The conformance suite must pass with test-level parallelism forced >1 and
# a warm-capable cache directory exported, so the engine's work-stealing and
# cache-hit paths are exercised under contention (not just the defaults).
DNNPERF_CACHE_DIR="$(mktemp -d)" \
    cargo test -q --offline -p dnnperf --test determinism -- --test-threads 4

echo "==> experiment binaries still build"
cargo build --offline -p dnnperf-bench --bins

echo "==> rustfmt"
cargo fmt --all -- --check

echo "==> clippy (warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> hermetic-dependency check"
if grep -En '^[^#]*\b(rand|crossbeam|proptest|criterion)\b' Cargo.toml crates/*/Cargo.toml; then
    echo "error: external dependency reference found in a manifest" >&2
    exit 1
fi

echo "CI passed."
