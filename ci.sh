#!/usr/bin/env bash
# Offline CI for the dnnperf workspace.
#
# The workspace is hermetic: it builds, tests and lints with no crates.io
# dependencies and no network access (CARGO_NET_OFFLINE pins that down —
# any accidental external dependency fails resolution immediately instead
# of silently fetching).

set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> tier-1: build (release)"
cargo build --release --offline --workspace

echo "==> tier-1: test"
cargo test -q --offline --workspace

echo "==> determinism conformance (forced multi-threading, tmpdir cache)"
# The conformance suite must pass with test-level parallelism forced >1 and
# a warm-capable cache directory exported, so the engine's work-stealing and
# cache-hit paths are exercised under contention (not just the defaults).
DNNPERF_CACHE_DIR="$(mktemp -d)" \
    cargo test -q --offline -p dnnperf --test determinism -- --test-threads 4

echo "==> fault-injection conformance (forced multi-threading)"
# The resilience contract — fault-injected collection byte-identical to
# fault-free, panic isolation, quarantine — must hold under test-level
# parallelism, not just the serial default.
cargo test -q --offline -p dnnperf --test fault_injection -- --test-threads 4

echo "==> serving conformance (forced multi-threading)"
# The shared plan cache and the TCP front door promise per-request
# determinism under contention: many threads hammering one cache (hits,
# misses, evictions, mid-flight invalidation) and many concurrent TCP
# clients must observe bit-identical predictions, no deadlocks and no
# duplicate compiles. Force test-level parallelism so the suites contend.
cargo test -q --offline -p dnnperf-serve --test concurrency -- --test-threads 4
cargo test -q --offline -p dnnperf-serve --test server -- --test-threads 4

echo "==> serving robustness conformance (forced multi-threading)"
# The failure-model contract: deadlines shed/sweep with typed answers,
# panicking workers never hang a waiter or shrink the pool, transport
# faults (torn frames, corruption, slowloris, mid-request disconnects)
# fail loudly or recover transparently, and shutdown under load leaves
# every request terminal with zero leaked worker threads.
cargo test -q --offline -p dnnperf-serve --test robustness -- --test-threads 4

echo "==> fleet simulation conformance (forced multi-threading)"
# The fleet what-if engine's contract: request conservation for every
# placement × batching × arrival × seed combination, byte-identical
# report replay (including across training thread counts), p99
# monotonicity in offered load, policy-independence of service demand,
# and bit-identity of fleet-path predictions (degradation notes, IGKW
# fallback) with the model stack. Forced test-level parallelism makes
# the shared-oracle fixtures contend.
cargo test -q --offline -p dnnperf --test fleet -- --test-threads 4

echo "==> experiment binaries still build"
cargo build --offline -p dnnperf-bench --bins

echo "==> perf regression gate (smoke profile vs committed BENCH_5.json)"
# Re-measures the serving/training hot paths with reduced iteration counts
# and gates on machine-relative figures: warm-predict ns/kernel may not
# regress more than 2x vs the committed baseline, and the compiled-plan
# sweep must stay at least 5x faster than the uncompiled legacy path.
# Release build: the baseline was captured in release, and the tier-1 step
# above has already built it.
cargo run --release --offline -q -p dnnperf-bench --bin perf -- --smoke --check BENCH_5.json

echo "==> train-scaling gate (smoke profile vs committed BENCH_9.json)"
# Sweeps KW training over worker counts {1,2,4,8} on an enlarged grid.
# Determinism is a hard abort inside the bin: the serialized model must be
# byte-identical at every thread count before anything is timed. The perf
# gate is machine-aware: boxes with >= 4 cores must show >= 2x speedup at
# 8 threads; smaller boxes gate serial ns/row against the baseline instead.
cargo run --release --offline -q -p dnnperf-bench --bin perf -- --train-scaling --smoke --check BENCH_9.json

echo "==> serving load gate (smoke profile vs committed BENCH_6.json)"
# End-to-end server smoke + regression gate in one step: boots the
# prediction server on an ephemeral port, drives 100+ concurrent TCP
# clients over the full zoo, shuts down cleanly, and gates on zero
# client-observed errors, p99 latency within 6x of the committed
# baseline, and throughput above baseline/6 (machine-relative).
cargo run --release --offline -q -p dnnperf-bench --bin loadgen -- --smoke --check BENCH_6.json

echo "==> chaos soak gate (deterministic fault injection vs committed BENCH_8.json)"
# Fixed-seed chaos soak over the serving layer: hundreds of clients
# through a faulty transport (torn/corrupt/stall/disconnect) and a
# panic-injected worker pool. The bin itself aborts unless every request
# gets exactly one terminal response and both scenarios replay
# byte-identically across two same-seed runs; --check then compares the
# counters against the committed baseline (counts exactly, the
# prediction checksum to 1e-6 relative).
cargo run --release --offline -q -p dnnperf-bench --bin chaos -- --smoke --check BENCH_8.json

echo "==> fleet sweep reproducibility gate (vs committed BENCH_7.json)"
# The capacity-planning sweep is fully deterministic (no wall clock, no
# ambient randomness): every point is simulated twice and must replay
# byte-identically and conserve every request (the bin aborts
# otherwise), and the figures must match the committed baseline —
# request counts exactly, float figures within 1e-6 relative.
cargo run --release --offline -q -p dnnperf-bench --bin fleet -- --smoke --check BENCH_7.json

echo "==> rustfmt"
cargo fmt --all -- --check

echo "==> clippy (warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> clippy: no unwrap/expect in resilience-critical crates"
# The collection engine and the scheduler pool promise panic isolation; a
# stray unwrap in their non-test code would turn a recoverable fault into
# a crashed worker. The deny lives as a crate attribute (so plain clippy
# enforces it); dnnperf-lint's panic-policy pass verifies the attribute
# structurally. This step re-lints the lib targets explicitly.
# (Tests may unwrap freely: cfg_attr(not(test)).)
cargo clippy --offline -p dnnperf-sched -p dnnperf-data -p dnnperf-core -p dnnperf-linreg --lib -- -D warnings

echo "==> dnnperf-lint (oracle isolation, determinism, panic policy, hermeticity, unsafe audit,"
echo "    lock-order, blocking-under-lock, condvar-discipline, poison-policy)"
# In-tree static analysis: proves the predictor/oracle boundary, the
# workspace hygiene invariants, and — since the concurrency analyzer —
# the serving stack's locking discipline (acyclic lock-class acquisition
# order, no blocking call under a live guard, condvar waits in predicate
# loops with notifies after mutations, and poison handling only through
# the shared *_unpoisoned helpers). Policy: lint.toml; grandfathered
# findings: lint-baseline.txt (with notes + expiries; entries naming
# deleted files fail the run). The JSON artifact keeps stdout
# machine-pure — the human summary goes to stderr — and is kept under
# target/ for CI consumers. The whole nine-pass run must stay interactive
# (<10s) so the lint gate never becomes the slow step people skip.
mkdir -p target
lint_start_ns=$(date +%s%N)
cargo run --offline -q -p dnnperf-lint -- --root . --format json > target/lint-report.json
lint_elapsed_ms=$(( ($(date +%s%N) - lint_start_ns) / 1000000 ))
echo "    lint report: target/lint-report.json (${lint_elapsed_ms} ms)"
if [ "${lint_elapsed_ms}" -gt 10000 ]; then
    echo "dnnperf-lint took ${lint_elapsed_ms} ms — over the 10s interactivity budget" >&2
    exit 1
fi

echo "CI passed."
