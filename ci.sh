#!/usr/bin/env bash
# Offline CI for the dnnperf workspace.
#
# The workspace is hermetic: it builds, tests and lints with no crates.io
# dependencies and no network access (CARGO_NET_OFFLINE pins that down —
# any accidental external dependency fails resolution immediately instead
# of silently fetching).

set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> tier-1: build (release)"
cargo build --release --offline --workspace

echo "==> tier-1: test"
cargo test -q --offline --workspace

echo "==> rustfmt"
cargo fmt --all -- --check

echo "==> clippy (warnings are errors)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> hermetic-dependency check"
if grep -En '^[^#]*\b(rand|crossbeam|proptest|criterion)\b' Cargo.toml crates/*/Cargo.toml; then
    echo "error: external dependency reference found in a manifest" >&2
    exit 1
fi

echo "CI passed."
