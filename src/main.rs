//! The `dnnperf` command-line tool: collect measurement datasets, train
//! performance models, ship them as text files, and predict execution times
//! for networks and hypothetical GPUs — the paper's Figure 10 workflow from
//! a shell.
//!
//! ```text
//! dnnperf list-gpus
//! dnnperf list-networks [--family resnet]
//! dnnperf collect --gpu A100 [--gpu V100 ...] [--batch 512] [--every K] --out DIR
//! dnnperf train --data DIR --gpu A100 [--model kw|lw|e2e] --out FILE
//! dnnperf predict --model FILE --network ResNet-50 [--batch 512]
//! dnnperf dse --network ResNet-50 [--batch 128] [--min 200] [--max 1400]
//! ```
//!
//! Argument parsing is hand-rolled (see DESIGN.md's dependency notes).

use dnnperf::data::collect::collect;
use dnnperf::data::csv::{read_dataset, write_dataset};
use dnnperf::dnn::{zoo, Network};
use dnnperf::gpu::GpuSpec;
use dnnperf::model::{E2eModel, IgkwModel, KwModel, LwModel, Predictor};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "list-gpus" => list_gpus(),
        "list-networks" => parse_flags(rest).and_then(list_networks),
        "collect" => parse_flags(rest).and_then(cmd_collect),
        "train" => parse_flags(rest).and_then(cmd_train),
        "predict" => parse_flags(rest).and_then(cmd_predict),
        "dse" => parse_flags(rest).and_then(cmd_dse),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "dnnperf — GPU execution time prediction for DNN workloads

USAGE:
    dnnperf list-gpus
    dnnperf list-networks [--family <tag>]
    dnnperf collect --gpu <name>... [--batch <n>] [--every <k>] --out <dir>
    dnnperf train --data <dir> --gpu <name> [--model kw|lw|e2e] --out <file>
    dnnperf predict --model <file> --network <name> [--batch <n>] [--on-gpu <name>] [--bandwidth <GB/s>]
    dnnperf dse --network <name> [--batch <n>] [--min <GB/s>] [--max <GB/s>]";

/// Parsed `--flag value` pairs; repeated flags accumulate.
struct Flags(HashMap<String, Vec<String>>);

impl Flags {
    fn one(&self, name: &str) -> Result<&str, String> {
        self.opt(name)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn opt(&self, name: &str) -> Option<&str> {
        self.0.get(name).and_then(|v| v.last()).map(String::as_str)
    }

    fn all(&self, name: &str) -> &[String] {
        self.0.get(name).map_or(&[], Vec::as_slice)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.opt(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("bad value for --{name}: {raw:?}")),
        }
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut map: HashMap<String, Vec<String>> = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument {arg:?}"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        map.entry(name.to_string()).or_default().push(value.clone());
    }
    Ok(Flags(map))
}

fn list_gpus() -> Result<(), String> {
    println!(
        "{:<12} {:>10} {:>8} {:>8} {:>6} {:>5}",
        "GPU", "BW (GB/s)", "Mem(GB)", "TFLOPS", "TC", "SMs"
    );
    for g in GpuSpec::all() {
        println!(
            "{:<12} {:>10} {:>8} {:>8} {:>6} {:>5}",
            g.name, g.bandwidth_gbps, g.memory_gb, g.fp32_tflops, g.tensor_cores, g.sm_count
        );
    }
    Ok(())
}

fn list_networks(flags: Flags) -> Result<(), String> {
    let family = flags.opt("family");
    let mut count = 0;
    for net in zoo::full_zoo() {
        if let Some(f) = family {
            if net.family().to_string() != f {
                continue;
            }
        }
        println!(
            "{:<40} {:>9.3} GFLOPs  {:>5} layers  [{}]",
            net.name(),
            net.total_flops() as f64 / 1e9,
            net.num_layers(),
            net.family()
        );
        count += 1;
    }
    eprintln!("{count} networks");
    Ok(())
}

fn resolve_network(name: &str) -> Result<Network, String> {
    if let Some(net) = zoo::by_name(name) {
        return Ok(net);
    }
    zoo::full_zoo()
        .into_iter()
        .find(|n| n.name() == name)
        .ok_or_else(|| format!("unknown network {name:?}; try `dnnperf list-networks`"))
}

fn resolve_gpu(name: &str) -> Result<GpuSpec, String> {
    GpuSpec::by_name(name).ok_or_else(|| format!("unknown GPU {name:?}; try `dnnperf list-gpus`"))
}

fn cmd_collect(flags: Flags) -> Result<(), String> {
    let gpu_names = flags.all("gpu");
    if gpu_names.is_empty() {
        return Err("need at least one --gpu".into());
    }
    let gpus: Vec<GpuSpec> = gpu_names
        .iter()
        .map(|n| resolve_gpu(n))
        .collect::<Result<_, _>>()?;
    let batch: usize = flags.num("batch", 512)?;
    let every: usize = flags.num("every", 1)?;
    let out = PathBuf::from(flags.one("out")?);

    let nets: Vec<Network> = zoo::full_zoo().into_iter().step_by(every.max(1)).collect();
    eprintln!(
        "collecting {} networks x {} GPUs at batch {batch} ...",
        nets.len(),
        gpus.len()
    );
    let ds = collect(&nets, &gpus, &[batch]);
    write_dataset(&ds, &out).map_err(|e| format!("writing dataset: {e}"))?;
    eprintln!(
        "wrote {} network rows, {} layer rows, {} kernel rows to {}",
        ds.networks.len(),
        ds.layers.len(),
        ds.kernels.len(),
        out.display()
    );
    Ok(())
}

fn cmd_train(flags: Flags) -> Result<(), String> {
    let data = PathBuf::from(flags.one("data")?);
    let gpu = flags.one("gpu")?;
    let kind = flags.opt("model").unwrap_or("kw");
    let out = PathBuf::from(flags.one("out")?);

    let ds = read_dataset(&data).map_err(|e| format!("reading dataset: {e}"))?;
    let text = match kind {
        "kw" => KwModel::train(&ds, gpu)
            .map_err(|e| e.to_string())?
            .to_text(),
        "lw" => LwModel::train(&ds, gpu)
            .map_err(|e| e.to_string())?
            .to_text(),
        "e2e" => E2eModel::train(&ds, gpu)
            .map_err(|e| e.to_string())?
            .to_text(),
        "igkw" => {
            let gpus: Vec<GpuSpec> = ds
                .gpu_names()
                .iter()
                .map(|n| resolve_gpu(n))
                .collect::<Result<_, _>>()?;
            IgkwModel::train(&ds, &gpus)
                .map_err(|e| e.to_string())?
                .to_text()
        }
        other => return Err(format!("unknown model kind {other:?} (kw|lw|e2e|igkw)")),
    };
    std::fs::write(&out, &text).map_err(|e| format!("writing model: {e}"))?;
    eprintln!(
        "wrote {kind} model ({} bytes) to {}",
        text.len(),
        out.display()
    );
    Ok(())
}

fn cmd_predict(flags: Flags) -> Result<(), String> {
    let path = PathBuf::from(flags.one("model")?);
    let net = resolve_network(flags.one("network")?)?;
    let batch: usize = flags.num("batch", 512)?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reading model: {e}"))?;
    let kind = text
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(2))
        .ok_or("model file has no header")?;

    let seconds = match kind {
        "kw" => KwModel::from_text(&text)
            .map_err(|e| e.to_string())?
            .predict_network(&net, batch)
            .map_err(|e| e.to_string())?,
        "lw" => LwModel::from_text(&text)
            .map_err(|e| e.to_string())?
            .predict_network(&net, batch)
            .map_err(|e| e.to_string())?,
        "e2e" => E2eModel::from_text(&text)
            .map_err(|e| e.to_string())?
            .predict_network(&net, batch)
            .map_err(|e| e.to_string())?,
        "igkw" => {
            let target = resolve_gpu(flags.one("on-gpu")?)?;
            let target = match flags.opt("bandwidth") {
                Some(bw) => target
                    .with_bandwidth(bw.parse().map_err(|_| format!("bad --bandwidth {bw:?}"))?),
                None => target,
            };
            IgkwModel::from_text(&text)
                .map_err(|e| e.to_string())?
                .predict_network_on(&net, batch, &target)
                .map_err(|e| e.to_string())?
        }
        other => return Err(format!("model file holds unsupported kind {other:?}")),
    };
    println!("{:.6} ms", seconds * 1e3);
    Ok(())
}

fn cmd_dse(flags: Flags) -> Result<(), String> {
    let net = resolve_network(flags.one("network")?)?;
    let batch: usize = flags.num("batch", 128)?;
    let min: u32 = flags.num("min", 200)?;
    let max: u32 = flags.num("max", 1400)?;
    if min == 0 || min > max {
        return Err("need 0 < --min <= --max".into());
    }

    let train_gpus: Vec<GpuSpec> = ["A100", "A40", "GTX 1080 Ti", "V100"]
        .iter()
        .map(|n| resolve_gpu(n))
        .collect::<Result<_, _>>()?;
    eprintln!(
        "training the inter-GPU model on {} GPUs ...",
        train_gpus.len()
    );
    let nets: Vec<Network> = zoo::cnn_zoo().into_iter().step_by(6).collect();
    let ds = collect(&nets, &train_gpus, &[128]);
    let model = IgkwModel::train(&ds, &train_gpus).map_err(|e| e.to_string())?;

    let titan = resolve_gpu("TITAN RTX")?;
    println!("{:>10}  {:>14}", "GB/s", "predicted");
    let mut bw = min;
    while bw <= max {
        let g = titan.with_bandwidth(bw as f64);
        let t = model
            .predict_network_on(&net, batch, &g)
            .map_err(|e| e.to_string())?;
        println!("{bw:>10}  {:>11.3} ms", t * 1e3);
        bw += 100;
    }
    Ok(())
}
