//! # dnnperf
//!
//! Fast, linear-regression-based GPU execution time prediction for DNN
//! workloads — a Rust implementation of *"Path Forward Beyond Simulators:
//! Fast and Accurate GPU Execution Time Prediction for DNN Workloads"*
//! (Li, Sun, Jog — MICRO 2023).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`dnn`] — layer IR, FLOPs counting, and the 646-network model zoo;
//! * [`gpu`] — GPU specs, cuDNN-like dispatch, and the measurement
//!   substrate (profiler + hidden ground-truth timing simulator);
//! * [`data`] — the measurement dataset, CSV IO and train/test splitting;
//! * [`linreg`] — ordinary least squares and error metrics;
//! * [`model`] — **the paper's contribution**: the E2E, Layer-Wise,
//!   Kernel-Wise and Inter-GPU Kernel-Wise predictors;
//! * [`simkit`] — event-driven simulation (disaggregated-memory case study);
//! * [`baseline`] — the cycle-approximate simulator with PKS/PKA sampling;
//! * [`sched`] — GPU selection and queue scheduling case studies;
//! * [`serve`] — the multi-tenant prediction server: sharded plan cache,
//!   admission control, and the length-prefixed TCP protocol.
//!
//! # Quick start
//!
//! Collect measurements, train the Kernel-Wise model, predict a network it
//! has never seen:
//!
//! ```
//! use dnnperf::data::collect::collect;
//! use dnnperf::dnn::zoo;
//! use dnnperf::gpu::GpuSpec;
//! use dnnperf::model::{KwModel, Predictor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let gpu = GpuSpec::by_name("A100").unwrap();
//! let training_nets = [
//!     zoo::resnet::resnet18(),
//!     zoo::resnet::resnet34(),
//!     zoo::resnet::resnet50(),
//!     zoo::vgg::vgg11(),
//! ];
//! let dataset = collect(&training_nets, &[gpu], &[64]);
//!
//! let model = KwModel::train(&dataset, "A100")?;
//! let unseen = zoo::resnet::resnet101();
//! let seconds = model.predict_network(&unseen, 64)?;
//! assert!(seconds > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for the paper's three case studies and DESIGN.md for the
//! per-experiment index.

#![warn(missing_docs)]

pub use dnnperf_baseline as baseline;
pub use dnnperf_core as model;
pub use dnnperf_data as data;
pub use dnnperf_dnn as dnn;
pub use dnnperf_gpu as gpu;
pub use dnnperf_linreg as linreg;
pub use dnnperf_sched as sched;
pub use dnnperf_serve as serve;
pub use dnnperf_simkit as simkit;
